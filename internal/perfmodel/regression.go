package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ProfilePoint is one sample of the Fig. 9 profiling sweep: the measured
// QPS of an embedding-shard gather operator when x vectors are gathered
// per input.
type ProfilePoint struct {
	Gathers float64 // x: vectors gathered per input
	QPS     float64
}

// SweepGatherQPS performs the paper's one-time profiling of embedding
// gather operations (Sec. IV-B, Fig. 9): it sweeps the number of vectors
// gathered per input and records the sustained QPS for the given embedding
// dimension and query batch size. In this reproduction the "measurement"
// queries the calibrated hardware profile, exactly as the real system
// would stress-test a shard container.
func (p *Profile) SweepGatherQPS(batchSize, dim int, gathers []int) []ProfilePoint {
	out := make([]ProfilePoint, 0, len(gathers))
	for _, x := range gathers {
		if x < 0 {
			continue
		}
		out = append(out, ProfilePoint{
			Gathers: float64(x),
			QPS:     p.ShardQPS(batchSize, float64(x), dim),
		})
	}
	return out
}

// DefaultSweep returns the gather counts profiled by default: 0..8 densely,
// then a geometric tail to maxGathers.
func DefaultSweep(maxGathers int) []int {
	var xs []int
	for x := 0; x <= 8 && x <= maxGathers; x++ {
		xs = append(xs, x)
	}
	for x := 12; x <= maxGathers; x = x * 3 / 2 {
		xs = append(xs, x)
	}
	if len(xs) == 0 || xs[len(xs)-1] != maxGathers {
		xs = append(xs, maxGathers)
	}
	return xs
}

// QPSModel estimates shard QPS as a function of n_s, the average number of
// vectors gathered from the shard per input (Algorithm 1 line 10's QPS(x)).
type QPSModel interface {
	QPS(ns float64) float64
	// Name identifies the regression family for reporting.
	Name() string
}

// PiecewiseLinearQPS interpolates the *latency* (1/QPS) linearly between
// profiled points. Because shard latency is affine in the gather count,
// this regression is exact on profile-generated data and well-behaved on
// noisy measurements; it is the default model ElasticRec builds from the
// profiling lookup table.
type PiecewiseLinearQPS struct {
	xs  []float64 // ascending gather counts
	lat []float64 // seconds per query at xs[i]
}

// NewPiecewiseLinearQPS fits the model to profiled points. At least two
// distinct points are required.
func NewPiecewiseLinearQPS(points []ProfilePoint) (*PiecewiseLinearQPS, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("perfmodel: piecewise regression needs >= 2 points, got %d", len(points))
	}
	sorted := make([]ProfilePoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Gathers < sorted[j].Gathers })
	m := &PiecewiseLinearQPS{}
	for i, pt := range sorted {
		if pt.QPS <= 0 {
			return nil, fmt.Errorf("perfmodel: non-positive QPS %v at x=%v", pt.QPS, pt.Gathers)
		}
		if i > 0 && pt.Gathers == sorted[i-1].Gathers {
			continue // drop duplicate x
		}
		m.xs = append(m.xs, pt.Gathers)
		m.lat = append(m.lat, 1/pt.QPS)
	}
	if len(m.xs) < 2 {
		return nil, fmt.Errorf("perfmodel: piecewise regression needs >= 2 distinct points")
	}
	return m, nil
}

// Name implements QPSModel.
func (m *PiecewiseLinearQPS) Name() string { return "piecewise-linear" }

// QPS implements QPSModel, extrapolating linearly beyond the profiled
// range (clamped so latency never goes below the smallest observed value).
func (m *PiecewiseLinearQPS) QPS(ns float64) float64 {
	n := len(m.xs)
	var lat float64
	switch {
	case ns <= m.xs[0]:
		lat = extrapolate(m.xs[0], m.lat[0], m.xs[1], m.lat[1], ns)
		if lat < m.lat[0]*1e-3 {
			lat = m.lat[0] * 1e-3
		}
	case ns >= m.xs[n-1]:
		lat = extrapolate(m.xs[n-2], m.lat[n-2], m.xs[n-1], m.lat[n-1], ns)
	default:
		i := sort.SearchFloat64s(m.xs, ns)
		if m.xs[i] == ns {
			lat = m.lat[i]
		} else {
			lat = extrapolate(m.xs[i-1], m.lat[i-1], m.xs[i], m.lat[i], ns)
		}
	}
	if lat <= 0 {
		lat = m.lat[0]
	}
	return 1 / lat
}

func extrapolate(x0, y0, x1, y1, x float64) float64 {
	if x1 == x0 {
		return y0
	}
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// LogLogQPS is the ablation alternative: least-squares fit of
// log(QPS) = a + b*log(1+ns). It is smoother but biased at the extremes,
// which the ablation benchmark quantifies.
type LogLogQPS struct {
	a, b float64
}

// NewLogLogQPS fits the log-log model to the profiled points.
func NewLogLogQPS(points []ProfilePoint) (*LogLogQPS, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("perfmodel: log-log regression needs >= 2 points, got %d", len(points))
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range points {
		if p.QPS <= 0 {
			continue
		}
		x := math.Log1p(p.Gathers)
		y := math.Log(p.QPS)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return nil, fmt.Errorf("perfmodel: log-log regression needs >= 2 valid points")
	}
	den := float64(n)*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return nil, fmt.Errorf("perfmodel: degenerate log-log fit (all x equal)")
	}
	b := (float64(n)*sxy - sx*sy) / den
	a := (sy - b*sx) / float64(n)
	return &LogLogQPS{a: a, b: b}, nil
}

// Name implements QPSModel.
func (m *LogLogQPS) Name() string { return "log-log" }

// QPS implements QPSModel.
func (m *LogLogQPS) QPS(ns float64) float64 {
	if ns < 0 {
		ns = 0
	}
	return math.Exp(m.a + m.b*math.Log1p(ns))
}

// BuildQPSModel runs the default profiling sweep for (batchSize, dim) up
// to maxGathers vectors per input and fits the default piecewise-linear
// regression — the complete pre-deployment profiling step of Fig. 7's
// "Deployment Cost Estimator" box.
func (p *Profile) BuildQPSModel(batchSize, dim, maxGathers int) (QPSModel, error) {
	points := p.SweepGatherQPS(batchSize, dim, DefaultSweep(maxGathers))
	return NewPiecewiseLinearQPS(points)
}

// MeanAbsRelError reports the mean |pred-true|/true of a QPS model against
// ground-truth points; used by the regression ablation.
func MeanAbsRelError(m QPSModel, truth []ProfilePoint) float64 {
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for _, p := range truth {
		if p.QPS <= 0 {
			continue
		}
		sum += math.Abs(m.QPS(p.Gathers)-p.QPS) / p.QPS
	}
	return sum / float64(len(truth))
}

// LatencyOf is a helper converting a QPS into a per-query duration.
func LatencyOf(qps float64) time.Duration {
	if qps <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(time.Second) / qps)
}
