package deploy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/perfmodel"
)

func planner(t *testing.T, plat perfmodel.Platform) *Planner {
	t.Helper()
	prof, err := perfmodel.ProfileFor(plat)
	if err != nil {
		t.Fatal(err)
	}
	return &Planner{Profile: prof}
}

func TestPlanModelWiseStructure(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	plan, err := pl.PlanModelWise(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != PolicyModelWise || len(plan.Shards) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	s := plan.Shards[0]
	if s.Kind != KindMonolith {
		t.Fatalf("kind = %v", s.Kind)
	}
	// Each replica holds the full model: 25.6 GB of tables + dense.
	if s.ParamBytes != cfg.DenseBytes()+cfg.SparseBytes() {
		t.Fatalf("ParamBytes = %d", s.ParamBytes)
	}
	// Replicas cover the target at the bottleneck QPS.
	bottleneck := pl.Profile.ModelWiseQPS(cfg)
	if float64(s.Replicas)*bottleneck < 100 {
		t.Fatalf("replicas %d at %v QPS cannot sustain 100", s.Replicas, bottleneck)
	}
	if float64(s.Replicas-1)*bottleneck >= 100 {
		t.Fatalf("replicas %d overprovisioned", s.Replicas)
	}
	// Plan-wide memory = replicas x (params + minmem).
	want := int64(s.Replicas) * (s.ParamBytes + pl.Profile.MinMemAlloc)
	if plan.TotalMemoryBytes() != want {
		t.Fatalf("TotalMemoryBytes = %d, want %d", plan.TotalMemoryBytes(), want)
	}
}

func TestPlanElasticStructure(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	plan, err := pl.PlanElastic(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != PolicyElastic {
		t.Fatalf("policy = %v", plan.Policy)
	}
	dense := plan.DenseShards()
	if len(dense) != 1 || dense[0].Kind != KindDense {
		t.Fatalf("dense shards = %d", len(dense))
	}
	emb := plan.EmbeddingShards()
	wantShards := plan.TablePlan.NumShards() * cfg.NumTables
	if len(emb) != wantShards {
		t.Fatalf("embedding shards = %d, want %d", len(emb), wantShards)
	}
	// Every embedding shard covers a valid row range and the ranges of
	// one table tile [0, rows).
	covered := int64(0)
	for _, s := range emb {
		if s.Table == 0 {
			if s.RowLo != covered {
				t.Fatalf("shard rows not contiguous: lo=%d, covered=%d", s.RowLo, covered)
			}
			covered = s.RowHi
		}
		if s.Replicas < 1 || s.QPSPerReplica <= 0 {
			t.Fatalf("bad shard spec: %+v", s)
		}
		if s.HPA.Kind != cluster.MetricQPSPerReplica {
			t.Fatal("sparse shards must use the throughput HPA target")
		}
	}
	if covered != cfg.RowsPerTable {
		t.Fatalf("table 0 covered %d of %d rows", covered, cfg.RowsPerTable)
	}
	if dense[0].HPA.Kind != cluster.MetricLatency {
		t.Fatal("dense shard must use the latency HPA target")
	}
	if dense[0].HPA.Target != DefaultSLA.Seconds()*HPALatencyFraction {
		t.Fatalf("dense HPA target = %v", dense[0].HPA.Target)
	}
}

func TestElasticBeatsModelWiseMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: paper-scale DP planning (~3s)")
	}
	for _, plat := range []perfmodel.Platform{perfmodel.CPUOnly, perfmodel.CPUGPU} {
		pl := planner(t, plat)
		target := 100.0
		if plat == perfmodel.CPUGPU {
			target = 200.0
		}
		for _, cfg := range model.StateOfTheArt() {
			mw, err := pl.PlanModelWise(cfg, target)
			if err != nil {
				t.Fatal(err)
			}
			er, err := pl.PlanElastic(cfg, target)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(mw.TotalMemoryBytes()) / float64(er.TotalMemoryBytes())
			// Paper's reductions range 2.2x-8.1x; require at least 2x
			// and a sane upper bound.
			if ratio < 2.0 || ratio > 12 {
				t.Errorf("%s/%s: memory reduction %.2fx outside the paper's band", plat, cfg.Name, ratio)
			}
			srvMW, err := mw.ServersNeeded(pl.Profile.Node)
			if err != nil {
				t.Fatal(err)
			}
			srvER, err := er.ServersNeeded(pl.Profile.Node)
			if err != nil {
				t.Fatal(err)
			}
			if srvER > srvMW {
				t.Errorf("%s/%s: ElasticRec needs more servers (%d > %d)", plat, cfg.Name, srvER, srvMW)
			}
		}
	}
}

func TestPaperShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: paper-scale DP planning (~1s)")
	}
	// Paper (CPU-only): RM1/RM2/RM3 partition into 4/3/3 shards. Our
	// calibration lands close; require the DP to pick a small multi-shard
	// count, not 1 and not the S_max ceiling.
	pl := planner(t, perfmodel.CPUOnly)
	for _, cfg := range model.StateOfTheArt() {
		plan, err := pl.PlanElastic(cfg, 100)
		if err != nil {
			t.Fatal(err)
		}
		n := plan.TablePlan.NumShards()
		if n < 2 || n > 8 {
			t.Errorf("%s: DP chose %d shards/table, expected 2..8", cfg.Name, n)
		}
	}
}

func TestHotShardsGetMoreReplicas(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	plan, err := pl.PlanElastic(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	var reps []int
	for _, s := range plan.EmbeddingShards() {
		if s.Table == 0 {
			reps = append(reps, s.Replicas)
		}
	}
	for i := 1; i < len(reps); i++ {
		if reps[i] > reps[i-1] {
			t.Fatalf("replicas not monotone with hotness: %v", reps)
		}
	}
	if reps[0] <= reps[len(reps)-1] {
		t.Fatalf("hot shard must out-replicate cold: %v", reps)
	}
}

func TestGPUCacheBaseline(t *testing.T) {
	pl := planner(t, perfmodel.CPUGPU)
	cfg := model.RM1()
	mw, err := pl.PlanModelWise(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	mwc, err := pl.PlanModelWiseCache(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	er, err := pl.PlanElastic(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 20 ordering: MW >= MW(cache) >= ER.
	if mwc.TotalMemoryBytes() > mw.TotalMemoryBytes() {
		t.Fatal("cache baseline must not use more memory than model-wise")
	}
	if er.TotalMemoryBytes() > mwc.TotalMemoryBytes() {
		t.Fatal("ElasticRec must beat the cache baseline")
	}
	// Cache must speed the sparse stage (fewer or equal replicas).
	if mwc.Shards[0].Replicas > mw.Shards[0].Replicas {
		t.Fatal("cache baseline replica count must not grow")
	}
	// The cache baseline is CPU-GPU only.
	cpuPl := planner(t, perfmodel.CPUOnly)
	if _, err := cpuPl.PlanModelWiseCache(cfg, 100); err == nil {
		t.Fatal("want platform error on CPU-only")
	}
}

func TestPlanDispatchAndValidation(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	for _, policy := range []Policy{PolicyElastic, PolicyModelWise} {
		p, err := pl.Plan(policy, cfg, 50)
		if err != nil {
			t.Fatal(err)
		}
		if p.Policy != policy {
			t.Fatalf("policy = %v", p.Policy)
		}
	}
	if _, err := pl.Plan("round-robin", cfg, 50); err == nil {
		t.Fatal("want unknown-policy error")
	}
	if _, err := pl.PlanElastic(cfg, 0); err == nil {
		t.Fatal("want target error")
	}
	if _, err := pl.PlanModelWise(cfg, -1); err == nil {
		t.Fatal("want target error")
	}
	bad := cfg
	bad.NumTables = 0
	if _, err := pl.PlanModelWise(bad, 100); err == nil {
		t.Fatal("want config error")
	}
	empty := &Planner{}
	if _, err := empty.PlanModelWise(cfg, 100); err == nil {
		t.Fatal("want missing-profile error")
	}
	if _, err := empty.CostModel(cfg); err == nil {
		t.Fatal("want missing-profile error")
	}
}

func TestForceShardsSweep(t *testing.T) {
	prof := perfmodel.CPUOnlyProfile()
	cfg := model.RM1()
	prev := int64(-1)
	memAt := map[int]int64{}
	for _, s := range []int{1, 2, 4, 8, 16} {
		pl := &Planner{Profile: prof, ForceShards: s}
		plan, err := pl.PlanElastic(cfg, 100)
		if err != nil {
			t.Fatal(err)
		}
		if plan.TablePlan.NumShards() != s {
			t.Fatalf("forced %d shards, got %d", s, plan.TablePlan.NumShards())
		}
		memAt[s] = plan.TotalMemoryBytes()
		prev = plan.TotalMemoryBytes()
		_ = prev
	}
	// Fig. 12d shape: memory at 4 shards well below 1 shard; the curve
	// plateaus (16 shards not dramatically better than 4).
	if memAt[4] >= memAt[1] {
		t.Fatalf("4-shard memory %d not below 1-shard %d", memAt[4], memAt[1])
	}
	if float64(memAt[16]) < 0.5*float64(memAt[4]) {
		t.Fatalf("no plateau: 16-shard %d vs 4-shard %d", memAt[16], memAt[4])
	}
}

func TestColdStartOrdering(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	mw, _ := pl.PlanModelWise(cfg, 100)
	er, _ := pl.PlanElastic(cfg, 100)
	// A monolith replica loads 25.6 GB; every elastic shard loads less.
	for i := range er.Shards {
		if er.Shards[i].ColdStart >= mw.Shards[0].ColdStart {
			t.Fatalf("shard %s cold start %v >= monolith %v",
				er.Shards[i].Name, er.Shards[i].ColdStart, mw.Shards[0].ColdStart)
		}
	}
}

func TestElasticLatencyPenaltyWithinSLA(t *testing.T) {
	// Sec. VI-B: ElasticRec adds ~31 ms (8% of the 400 ms SLA) on
	// CPU-only; the penalty must exist but stay a small SLA fraction.
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	mw, _ := pl.PlanModelWise(cfg, 100)
	er, _ := pl.PlanElastic(cfg, 100)
	penalty := er.AvgLatency - mw.AvgLatency
	if penalty <= 0 {
		t.Fatalf("expected a communication penalty, got %v", penalty)
	}
	if penalty > DefaultSLA/4 {
		t.Fatalf("penalty %v exceeds 25%% of SLA", penalty)
	}
	if er.AvgLatency > DefaultSLA {
		t.Fatalf("elastic latency %v violates SLA", er.AvgLatency)
	}
}

func TestMaterialize(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	plan, err := pl.PlanElastic(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := plan.Materialize(pl.Profile.Node, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Deployments()) != len(plan.Shards) {
		t.Fatalf("deployments = %d, want %d", len(cl.Deployments()), len(plan.Shards))
	}
	// Before any tick, pods are starting; after the longest cold start
	// they are all ready.
	cl.Tick(10 * time.Minute)
	for _, name := range cl.Deployments() {
		d, _ := cl.Deployment(name)
		desired, ready := d.Replicas()
		if desired != ready {
			t.Fatalf("%s: %d desired, %d ready after 10m", name, desired, ready)
		}
	}
}

func TestMonolithOnePerNode(t *testing.T) {
	// Model-wise replicas own the node's execution resources, so server
	// count equals replica count (the paper's server-granular scaling).
	pl := planner(t, perfmodel.CPUOnly)
	plan, err := pl.PlanModelWise(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	servers, err := plan.ServersNeeded(pl.Profile.Node)
	if err != nil {
		t.Fatal(err)
	}
	if servers != plan.Shards[0].Replicas {
		t.Fatalf("servers = %d, replicas = %d", servers, plan.Shards[0].Replicas)
	}
}

func TestCustomPlannerKnobs(t *testing.T) {
	prof := perfmodel.CPUOnlyProfile()
	pl := &Planner{
		Profile:         prof,
		DPTargetTraffic: 500,
		SLA:             200 * time.Millisecond,
	}
	plan, err := pl.PlanElastic(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	dense := plan.DenseShards()[0]
	if dense.HPA.Target != 0.2*HPALatencyFraction {
		t.Fatalf("custom SLA not honored: %v", dense.HPA.Target)
	}
}
