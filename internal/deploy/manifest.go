package deploy

import (
	"fmt"
	"strings"
)

// This file is the concrete output of Fig. 7's "Deployment Module":
// rendering a plan as Kubernetes-style manifests — one Deployment plus one
// HorizontalPodAutoscaler per shard type — so the plan can be inspected,
// diffed and applied by standard tooling. The YAML is generated
// structurally (no templating library) and kept to the subset of fields
// the paper's deployment relies on.

// Manifests renders the plan as a multi-document YAML string.
func (p *Plan) Manifests() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# deployment plan: %s / %s / policy=%s / target=%.0f QPS\n",
		p.Model.Name, p.Platform, p.Policy, p.TargetQPS)
	for i := range p.Shards {
		s := &p.Shards[i]
		writeDeploymentYAML(&b, s)
		writeHPAYAML(&b, s)
	}
	return b.String()
}

func writeDeploymentYAML(b *strings.Builder, s *ShardSpec) {
	name := sanitizeName(s.Name)
	fmt.Fprintf(b, "---\napiVersion: apps/v1\nkind: Deployment\nmetadata:\n")
	fmt.Fprintf(b, "  name: %s\n  labels:\n    app: %s\n    shard-kind: %s\n", name, name, s.Kind)
	if s.Kind == KindEmbedding {
		fmt.Fprintf(b, "    table: %q\n    shard: %q\n", fmt.Sprint(s.Table), fmt.Sprint(s.Shard))
	}
	fmt.Fprintf(b, "spec:\n  replicas: %d\n  selector:\n    matchLabels:\n      app: %s\n", s.Replicas, name)
	fmt.Fprintf(b, "  template:\n    metadata:\n      labels:\n        app: %s\n", name)
	fmt.Fprintf(b, "    spec:\n      containers:\n      - name: %s\n        image: elasticrec/%s:latest\n", name, s.Kind)
	fmt.Fprintf(b, "        resources:\n          requests:\n")
	fmt.Fprintf(b, "            cpu: %dm\n            memory: %dMi\n", s.Resources.CPUMilli, s.Resources.MemBytes>>20)
	if s.Resources.GPUs > 0 {
		fmt.Fprintf(b, "            nvidia.com/gpu: %d\n", s.Resources.GPUs)
	}
	if s.Kind == KindEmbedding {
		fmt.Fprintf(b, "        env:\n")
		fmt.Fprintf(b, "        - name: SHARD_ROW_LO\n          value: %q\n", fmt.Sprint(s.RowLo))
		fmt.Fprintf(b, "        - name: SHARD_ROW_HI\n          value: %q\n", fmt.Sprint(s.RowHi))
	}
	fmt.Fprintf(b, "        readinessProbe:\n          initialDelaySeconds: %d\n", int(s.ColdStart.Seconds()))
}

func writeHPAYAML(b *strings.Builder, s *ShardSpec) {
	name := sanitizeName(s.Name)
	fmt.Fprintf(b, "---\napiVersion: autoscaling/v2\nkind: HorizontalPodAutoscaler\nmetadata:\n  name: %s\n", name)
	fmt.Fprintf(b, "spec:\n  scaleTargetRef:\n    apiVersion: apps/v1\n    kind: Deployment\n    name: %s\n", name)
	fmt.Fprintf(b, "  minReplicas: %d\n", s.HPA.MinReplicas)
	max := s.HPA.MaxReplicas
	if max <= 0 {
		max = 512
	}
	fmt.Fprintf(b, "  maxReplicas: %d\n  metrics:\n  - type: Pods\n    pods:\n      metric:\n", max)
	switch s.HPA.Kind {
	case "qps-per-replica":
		fmt.Fprintf(b, "        name: queries_per_second\n")
		fmt.Fprintf(b, "      target:\n        type: AverageValue\n        averageValue: %q\n",
			fmt.Sprintf("%.1f", s.HPA.Target))
	default:
		fmt.Fprintf(b, "        name: p95_latency_seconds\n")
		fmt.Fprintf(b, "      target:\n        type: AverageValue\n        averageValue: %q\n",
			fmt.Sprintf("%.3f", s.HPA.Target))
	}
}

// sanitizeName makes a shard name a valid DNS-1123 label.
func sanitizeName(name string) string {
	lower := strings.ToLower(name)
	var out strings.Builder
	for _, r := range lower {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			out.WriteRune(r)
		default:
			out.WriteByte('-')
		}
	}
	return strings.Trim(out.String(), "-")
}
