// Package deploy turns a model, a hardware profile and a target QPS into a
// concrete deployment: container (shard) specs with resource requests,
// replica counts, HPA policies and cold-start estimates. It implements the
// three resource-allocation policies the paper compares: ElasticRec's
// fine-grained shard allocation, the model-wise baseline, and model-wise
// augmented with a GPU-side embedding cache (Sec. VI-E).
package deploy

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/perfmodel"
)

// Policy names a resource-allocation strategy.
type Policy string

// The compared policies.
const (
	PolicyElastic        Policy = "elasticrec"
	PolicyModelWise      Policy = "model-wise"
	PolicyModelWiseCache Policy = "model-wise-cache"
)

// ShardKind classifies a container type.
type ShardKind string

// Shard kinds.
const (
	// KindDense is ElasticRec's dense DNN shard (bottom MLP, feature
	// interaction, top MLP).
	KindDense ShardKind = "dense"
	// KindEmbedding is one ElasticRec embedding shard.
	KindEmbedding ShardKind = "embedding"
	// KindMonolith is a model-wise replica holding the entire model.
	KindMonolith ShardKind = "monolith"
)

// ShardSpec describes one deployable container type.
type ShardSpec struct {
	Name string
	Kind ShardKind
	// Table and Shard index the embedding shard within its table's plan
	// (-1 for dense/monolith).
	Table, Shard int
	// RowLo, RowHi delimit the sorted-table rows an embedding shard
	// holds (0 for dense/monolith).
	RowLo, RowHi int64
	// ParamBytes is the shard's parameter footprint.
	ParamBytes int64
	// MemBytes is ParamBytes plus the per-container minimum allocation.
	MemBytes int64
	// Resources is the pod resource request.
	Resources cluster.ResourceSpec
	// QPSPerReplica is the per-replica sustainable throughput: the
	// stress-tested QPSmax for sparse shards, the modelled throughput
	// for dense/monolith.
	QPSPerReplica float64
	// NSPerInput is the expected vectors gathered per input (embedding
	// shards only).
	NSPerInput float64
	// Replicas is the count provisioned to meet the plan's target QPS.
	Replicas int
	// ColdStart is a new replica's time-to-ready.
	ColdStart time.Duration
	// HPA is the autoscaling policy bound to the shard.
	HPA cluster.HPAPolicy
}

// TotalMemBytes returns MemBytes across the provisioned replicas.
func (s *ShardSpec) TotalMemBytes() int64 { return int64(s.Replicas) * s.MemBytes }

// Plan is a complete deployment plan for one model under one policy.
type Plan struct {
	Policy    Policy
	Model     model.Config
	Platform  perfmodel.Platform
	TargetQPS float64
	// TablePlan is the per-table partitioning (tables are identically
	// distributed, so one plan is shared by all tables). Single full
	// shard under model-wise.
	TablePlan partition.Plan
	Shards    []ShardSpec
	// AvgLatency is the modelled end-to-end query latency.
	AvgLatency time.Duration
}

// TotalMemoryBytes is the fleet-wide memory allocation (Figs. 13, 16, 20).
func (p *Plan) TotalMemoryBytes() int64 {
	var total int64
	for i := range p.Shards {
		total += p.Shards[i].TotalMemBytes()
	}
	return total
}

// TotalReplicas counts pods across all shard types.
func (p *Plan) TotalReplicas() int {
	n := 0
	for i := range p.Shards {
		n += p.Shards[i].Replicas
	}
	return n
}

// DenseShards returns the specs servicing dense layers.
func (p *Plan) DenseShards() []*ShardSpec { return p.shardsOf(KindDense, KindMonolith) }

// EmbeddingShards returns the embedding shard specs.
func (p *Plan) EmbeddingShards() []*ShardSpec { return p.shardsOf(KindEmbedding) }

func (p *Plan) shardsOf(kinds ...ShardKind) []*ShardSpec {
	var out []*ShardSpec
	for i := range p.Shards {
		for _, k := range kinds {
			if p.Shards[i].Kind == k {
				out = append(out, &p.Shards[i])
			}
		}
	}
	return out
}

// ServersNeeded packs every replica onto auto-provisioned nodes of the
// platform's node spec and returns the node count — the server counts of
// Figs. 15 and 18.
func (p *Plan) ServersNeeded(node perfmodel.NodeSpec) (int, error) {
	template := cluster.ResourceSpec{
		CPUMilli: int64(node.Cores) * 1000,
		MemBytes: node.MemBytes,
		GPUs:     node.GPUs,
	}
	c := cluster.NewAutoProvisioned(template)
	for i := range p.Shards {
		s := &p.Shards[i]
		_, err := c.CreateDeployment(s.Name, s.Resources, s.ColdStart, s.Replicas, 0)
		if err != nil {
			return 0, fmt.Errorf("deploy: packing %s: %w", s.Name, err)
		}
	}
	return c.NodesInUse(), nil
}

// Materialize schedules the plan onto a fresh auto-provisioned cluster and
// returns it with all deployments created — the starting state for the
// dynamic-traffic simulation.
func (p *Plan) Materialize(node perfmodel.NodeSpec, now time.Duration) (*cluster.Cluster, error) {
	template := cluster.ResourceSpec{
		CPUMilli: int64(node.Cores) * 1000,
		MemBytes: node.MemBytes,
		GPUs:     node.GPUs,
	}
	c := cluster.NewAutoProvisioned(template)
	for i := range p.Shards {
		s := &p.Shards[i]
		if _, err := c.CreateDeployment(s.Name, s.Resources, s.ColdStart, s.Replicas, now); err != nil {
			return nil, fmt.Errorf("deploy: materializing %s: %w", s.Name, err)
		}
	}
	return c, nil
}

func ceilDiv(target, qps float64) int {
	if qps <= 0 {
		return math.MaxInt32
	}
	n := int(math.Ceil(target / qps))
	if n < 1 {
		n = 1
	}
	return n
}
