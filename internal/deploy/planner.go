package deploy

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// Planner builds deployment plans. Zero-value knobs take the documented
// defaults so callers usually only set Profile.
type Planner struct {
	// Profile is the target hardware (required).
	Profile *perfmodel.Profile
	// CDF overrides the access distribution; nil derives the analytic
	// power-law CDF from the model's LocalityP with DefaultExponent.
	CDF partition.CDF
	// Partitioner configures Algorithm 2 (zero value = defaults).
	Partitioner partition.Partitioner
	// DPTargetTraffic is Algorithm 1's traffic constant (paper: 1000).
	DPTargetTraffic float64
	// SLA is the tail-latency agreement (paper: 400 ms); dense-shard HPA
	// targets 65% of it.
	SLA time.Duration
	// ForceShards forces the per-table shard count instead of letting
	// the DP choose (the Fig. 12d manual sweep); 0 = optimal.
	ForceShards int
}

// Defaults mirroring Sec. IV-B and Sec. V-C.
const (
	// DefaultDPTargetTraffic is the DP's traffic constant.
	DefaultDPTargetTraffic = 1000.0
	// DefaultSLA is the industry tail-latency target the paper adopts.
	DefaultSLA = 400 * time.Millisecond
	// DefaultExponent is the intra-segment power-law decay used when
	// deriving an analytic CDF from LocalityP.
	DefaultExponent = 0.9
	// HPALatencyFraction sets dense HPA targets at 65% of SLA.
	HPALatencyFraction = 0.65
	// HPAQPSHeadroom scales the throughput-centric HPA target below the
	// stress-tested QPSmax so shards scale out before saturating (running
	// a queueing stage at 100% of its measured maximum leaves no room for
	// burst absorption and pins the tail latency at the SLA).
	HPAQPSHeadroom = 0.85
)

func (pl *Planner) dpTarget() float64 {
	if pl.DPTargetTraffic <= 0 {
		return DefaultDPTargetTraffic
	}
	return pl.DPTargetTraffic
}

func (pl *Planner) sla() time.Duration {
	if pl.SLA <= 0 {
		return DefaultSLA
	}
	return pl.SLA
}

func (pl *Planner) cdfFor(cfg model.Config) (partition.CDF, error) {
	if pl.CDF != nil {
		return pl.CDF, nil
	}
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, DefaultExponent)
	if err != nil {
		return nil, fmt.Errorf("deploy: deriving CDF: %w", err)
	}
	return s.Analytic(), nil
}

// CostModel assembles the Algorithm 1 estimator for cfg: it runs the
// profiling sweep, fits the QPS regression and wires the CDF. Exposed so
// experiments (Fig. 12) can evaluate partitioning costs directly.
func (pl *Planner) CostModel(cfg model.Config) (*partition.CostModel, error) {
	if pl.Profile == nil {
		return nil, fmt.Errorf("deploy: planner needs a hardware profile")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cdf, err := pl.cdfFor(cfg)
	if err != nil {
		return nil, err
	}
	qps, err := pl.Profile.BuildQPSModel(cfg.BatchSize, cfg.EmbeddingDim, cfg.Pooling)
	if err != nil {
		return nil, fmt.Errorf("deploy: QPS regression: %w", err)
	}
	cm := &partition.CostModel{
		CDF:             cdf,
		PoolingPerInput: float64(cfg.Pooling),
		BatchSize:       cfg.BatchSize,
		VectorBytes:     int64(cfg.EmbeddingDim) * 4,
		MinMemAlloc:     pl.Profile.MinMemAlloc,
		TargetTraffic:   pl.dpTarget(),
		QPS:             qps,
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	return cm, nil
}

// PartitionTable runs Algorithm 2 for one of cfg's tables and returns the
// chosen plan (identical for all tables, which are i.i.d. in the paper's
// workloads; Sec. VI-A: "ElasticRec applies its table partitioning
// algorithm separately for each individual table").
func (pl *Planner) PartitionTable(cfg model.Config) (partition.Plan, *partition.CostModel, error) {
	cm, err := pl.CostModel(cfg)
	if err != nil {
		return partition.Plan{}, nil, err
	}
	var plan partition.Plan
	if pl.ForceShards > 0 {
		plan, err = pl.Partitioner.PartitionFixedShards(cfg.RowsPerTable, pl.ForceShards, cm.CostFunc())
	} else {
		plan, err = pl.Partitioner.Partition(cfg.RowsPerTable, cm.CostFunc())
	}
	if err != nil {
		return partition.Plan{}, nil, err
	}
	return plan, cm, nil
}

// denseResources sizes the dense shard's pod request: GPU-centric on
// CPU-GPU platforms; on CPU-only, the core request grows with the model's
// dense compute intensity (heavier MLPs keep more cores busy per query).
func (pl *Planner) denseResources(cfg model.Config) cluster.ResourceSpec {
	p := pl.Profile
	mem := cfg.DenseBytes() + p.MinMemAlloc
	if p.Platform == perfmodel.CPUGPU {
		return cluster.ResourceSpec{CPUMilli: 8000, MemBytes: mem, GPUs: 1}
	}
	cores := int64(12 + 6*(cfg.DenseFLOPsPerQuery()/40_000_000))
	if cores > int64(p.Node.Cores) {
		cores = int64(p.Node.Cores)
	}
	return cluster.ResourceSpec{CPUMilli: cores * 1000, MemBytes: mem}
}

// monolithResources sizes a model-wise replica: it owns the node's
// execution resources (the whole model is one serving process using all
// cores, plus the GPU on CPU-GPU nodes), which is why model-wise scaling
// is server-granular.
func (pl *Planner) monolithResources(cfg model.Config) cluster.ResourceSpec {
	p := pl.Profile
	mem := cfg.DenseBytes() + cfg.SparseBytes() + p.MinMemAlloc
	cores := int64(p.Node.Cores) * 1000 * 3 / 4
	return cluster.ResourceSpec{CPUMilli: cores, MemBytes: mem, GPUs: p.Node.GPUs}
}

// embeddingResources sizes one embedding-shard pod: a half-core
// CPU-centric container holding its row range (gathers are memory-bound,
// not compute-bound).
func (pl *Planner) embeddingResources(paramBytes int64) cluster.ResourceSpec {
	return cluster.ResourceSpec{CPUMilli: 500, MemBytes: paramBytes + pl.Profile.MinMemAlloc}
}

// PlanElastic builds the ElasticRec deployment: one dense shard type plus
// the DP-chosen embedding shards per table, each independently replicated
// to meet targetQPS.
func (pl *Planner) PlanElastic(cfg model.Config, targetQPS float64) (*Plan, error) {
	if targetQPS <= 0 {
		return nil, fmt.Errorf("deploy: target QPS must be positive, got %v", targetQPS)
	}
	tablePlan, cm, err := pl.PartitionTable(cfg)
	if err != nil {
		return nil, err
	}
	ests, err := cm.Evaluate(tablePlan)
	if err != nil {
		return nil, err
	}

	p := pl.Profile
	plan := &Plan{
		Policy:    PolicyElastic,
		Model:     cfg,
		Platform:  p.Platform,
		TargetQPS: targetQPS,
		TablePlan: tablePlan,
	}

	denseQPS := p.DenseQPS(cfg)
	denseSpec := ShardSpec{
		Name:          fmt.Sprintf("%s-dense", cfg.Name),
		Kind:          KindDense,
		Table:         -1,
		Shard:         -1,
		ParamBytes:    cfg.DenseBytes(),
		MemBytes:      cfg.DenseBytes() + p.MinMemAlloc,
		Resources:     pl.denseResources(cfg),
		QPSPerReplica: denseQPS,
		Replicas:      ceilDiv(targetQPS, denseQPS),
		ColdStart:     p.ColdStart(cfg.DenseBytes()),
		HPA: cluster.HPAPolicy{
			Deployment:  fmt.Sprintf("%s-dense", cfg.Name),
			Kind:        cluster.MetricLatency,
			Target:      pl.sla().Seconds() * HPALatencyFraction,
			MinReplicas: 1,
			QPSGuard:    denseQPS,
		},
	}
	plan.Shards = append(plan.Shards, denseSpec)

	var maxShardLat time.Duration
	for t := 0; t < cfg.NumTables; t++ {
		for s, e := range ests {
			name := fmt.Sprintf("%s-t%d-s%d", cfg.Name, t, s)
			lat := p.ShardLatency(cfg.BatchSize, e.NS, cfg.EmbeddingDim)
			if lat > maxShardLat {
				maxShardLat = lat
			}
			spec := ShardSpec{
				Name:          name,
				Kind:          KindEmbedding,
				Table:         t,
				Shard:         s,
				RowLo:         e.Lo,
				RowHi:         e.Hi,
				ParamBytes:    e.CapacityBytes,
				MemBytes:      e.CapacityBytes + p.MinMemAlloc,
				Resources:     pl.embeddingResources(e.CapacityBytes),
				QPSPerReplica: e.QPS,
				NSPerInput:    e.NS,
				Replicas:      ceilDiv(targetQPS, e.QPS),
				ColdStart:     p.ColdStart(e.CapacityBytes),
				HPA: cluster.HPAPolicy{
					Deployment:  name,
					Kind:        cluster.MetricQPSPerReplica,
					Target:      e.QPS * HPAQPSHeadroom, // below stress-tested QPSmax
					MinReplicas: 1,
					Tolerance:   0.05,
				},
			}
			plan.Shards = append(plan.Shards, spec)
		}
	}
	contacted := tablePlan.NumShards() * cfg.NumTables
	plan.AvgLatency = p.ElasticLatency(cfg, contacted, maxShardLat)
	return plan, nil
}

// PlanModelWise builds the baseline: one monolithic container type
// replicated until the pipeline's bottleneck stage sustains targetQPS.
func (pl *Planner) PlanModelWise(cfg model.Config, targetQPS float64) (*Plan, error) {
	return pl.planMonolithic(cfg, targetQPS, PolicyModelWise, 1.0)
}

// GPUCacheLatencyScale is the Sec. VI-E conservative model: a GPU-resident
// embedding cache capturing 90% of gathers cuts the embedding layer's
// average latency by 47%.
const GPUCacheLatencyScale = 0.53

// PlanModelWiseCache builds the model-wise + GPU embedding cache baseline
// (CPU-GPU platforms only): sparse-stage latency is scaled by
// GPUCacheLatencyScale, raising per-replica QPS and thus lowering the
// replica count, while each replica still allocates the full tables in
// CPU memory.
func (pl *Planner) PlanModelWiseCache(cfg model.Config, targetQPS float64) (*Plan, error) {
	if pl.Profile != nil && pl.Profile.Platform != perfmodel.CPUGPU {
		return nil, fmt.Errorf("deploy: GPU embedding cache requires the CPU-GPU platform")
	}
	return pl.planMonolithic(cfg, targetQPS, PolicyModelWiseCache, GPUCacheLatencyScale)
}

func (pl *Planner) planMonolithic(cfg model.Config, targetQPS float64, policy Policy, sparseLatScale float64) (*Plan, error) {
	if pl.Profile == nil {
		return nil, fmt.Errorf("deploy: planner needs a hardware profile")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if targetQPS <= 0 {
		return nil, fmt.Errorf("deploy: target QPS must be positive, got %v", targetQPS)
	}
	p := pl.Profile
	sparseLat := time.Duration(float64(p.MonoSparseLatency(cfg)) * sparseLatScale)
	denseLat := p.DenseLatency(cfg)
	sparseQPS := float64(time.Second) / float64(sparseLat)
	denseQPS := float64(time.Second) / float64(denseLat)
	qps := sparseQPS
	if denseQPS < qps {
		qps = denseQPS
	}
	paramBytes := cfg.DenseBytes() + cfg.SparseBytes()
	name := fmt.Sprintf("%s-%s", cfg.Name, policy)
	spec := ShardSpec{
		Name:          name,
		Kind:          KindMonolith,
		Table:         -1,
		Shard:         -1,
		RowHi:         cfg.RowsPerTable,
		ParamBytes:    paramBytes,
		MemBytes:      paramBytes + p.MinMemAlloc,
		Resources:     pl.monolithResources(cfg),
		QPSPerReplica: qps,
		Replicas:      ceilDiv(targetQPS, qps),
		ColdStart:     p.ColdStart(paramBytes),
		HPA: cluster.HPAPolicy{
			Deployment:  name,
			Kind:        cluster.MetricQPSPerReplica,
			Target:      qps * HPAQPSHeadroom,
			MinReplicas: 1,
		},
	}
	return &Plan{
		Policy:     policy,
		Model:      cfg,
		Platform:   p.Platform,
		TargetQPS:  targetQPS,
		TablePlan:  partition.SingleShard(cfg.RowsPerTable),
		Shards:     []ShardSpec{spec},
		AvgLatency: denseLat + sparseLat,
	}, nil
}

// Plan dispatches on policy.
func (pl *Planner) Plan(policy Policy, cfg model.Config, targetQPS float64) (*Plan, error) {
	switch policy {
	case PolicyElastic:
		return pl.PlanElastic(cfg, targetQPS)
	case PolicyModelWise:
		return pl.PlanModelWise(cfg, targetQPS)
	case PolicyModelWiseCache:
		return pl.PlanModelWiseCache(cfg, targetQPS)
	default:
		return nil, fmt.Errorf("deploy: unknown policy %q", policy)
	}
}
