package deploy

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/partition"
)

// The paper's workloads use i.i.d. tables, so PlanElastic partitions once
// and reuses the plan. Production models have heterogeneous tables — some
// near-uniform, some hot — so this file adds per-table planning: each
// table gets its own CDF, its own Algorithm 2 run and its own shard specs,
// exactly as Sec. VI-A describes ("ElasticRec applies its table
// partitioning algorithm separately for each individual table").

// PlanElasticPerTable builds an ElasticRec plan where table t is
// partitioned against cdfs[t]. len(cdfs) must equal cfg.NumTables and each
// CDF must cover cfg.RowsPerTable rows.
func (pl *Planner) PlanElasticPerTable(cfg model.Config, targetQPS float64, cdfs []partition.CDF) (*Plan, error) {
	if pl.Profile == nil {
		return nil, fmt.Errorf("deploy: planner needs a hardware profile")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if targetQPS <= 0 {
		return nil, fmt.Errorf("deploy: target QPS must be positive, got %v", targetQPS)
	}
	if len(cdfs) != cfg.NumTables {
		return nil, fmt.Errorf("deploy: %d CDFs for %d tables", len(cdfs), cfg.NumTables)
	}

	p := pl.Profile
	qps, err := p.BuildQPSModel(cfg.BatchSize, cfg.EmbeddingDim, cfg.Pooling)
	if err != nil {
		return nil, fmt.Errorf("deploy: QPS regression: %w", err)
	}

	plan := &Plan{
		Policy:    PolicyElastic,
		Model:     cfg,
		Platform:  p.Platform,
		TargetQPS: targetQPS,
	}

	denseQPS := p.DenseQPS(cfg)
	denseName := fmt.Sprintf("%s-dense", cfg.Name)
	plan.Shards = append(plan.Shards, ShardSpec{
		Name:          denseName,
		Kind:          KindDense,
		Table:         -1,
		Shard:         -1,
		ParamBytes:    cfg.DenseBytes(),
		MemBytes:      cfg.DenseBytes() + p.MinMemAlloc,
		Resources:     pl.denseResources(cfg),
		QPSPerReplica: denseQPS,
		Replicas:      ceilDiv(targetQPS, denseQPS),
		ColdStart:     p.ColdStart(cfg.DenseBytes()),
		HPA: cluster.HPAPolicy{
			Deployment:  denseName,
			Kind:        cluster.MetricLatency,
			Target:      pl.sla().Seconds() * HPALatencyFraction,
			MinReplicas: 1,
			QPSGuard:    denseQPS,
		},
	})

	var maxShardLat time.Duration
	contacted := 0
	for t := 0; t < cfg.NumTables; t++ {
		cdf := cdfs[t]
		if cdf == nil {
			return nil, fmt.Errorf("deploy: nil CDF for table %d", t)
		}
		if cdf.Rows() != cfg.RowsPerTable {
			return nil, fmt.Errorf("deploy: table %d CDF covers %d rows, want %d",
				t, cdf.Rows(), cfg.RowsPerTable)
		}
		cm := &partition.CostModel{
			CDF:             cdf,
			PoolingPerInput: float64(cfg.Pooling),
			BatchSize:       cfg.BatchSize,
			VectorBytes:     int64(cfg.EmbeddingDim) * 4,
			MinMemAlloc:     p.MinMemAlloc,
			TargetTraffic:   pl.dpTarget(),
			QPS:             qps,
		}
		if err := cm.Validate(); err != nil {
			return nil, fmt.Errorf("deploy: table %d: %w", t, err)
		}
		var tablePlan partition.Plan
		if pl.ForceShards > 0 {
			tablePlan, err = pl.Partitioner.PartitionFixedShards(cfg.RowsPerTable, pl.ForceShards, cm.CostFunc())
		} else {
			tablePlan, err = pl.Partitioner.Partition(cfg.RowsPerTable, cm.CostFunc())
		}
		if err != nil {
			return nil, fmt.Errorf("deploy: partitioning table %d: %w", t, err)
		}
		if t == 0 {
			plan.TablePlan = tablePlan
		}
		ests, err := cm.Evaluate(tablePlan)
		if err != nil {
			return nil, fmt.Errorf("deploy: evaluating table %d: %w", t, err)
		}
		contacted += len(ests)
		for s, e := range ests {
			name := fmt.Sprintf("%s-t%d-s%d", cfg.Name, t, s)
			lat := p.ShardLatency(cfg.BatchSize, e.NS, cfg.EmbeddingDim)
			if lat > maxShardLat {
				maxShardLat = lat
			}
			plan.Shards = append(plan.Shards, ShardSpec{
				Name:          name,
				Kind:          KindEmbedding,
				Table:         t,
				Shard:         s,
				RowLo:         e.Lo,
				RowHi:         e.Hi,
				ParamBytes:    e.CapacityBytes,
				MemBytes:      e.CapacityBytes + p.MinMemAlloc,
				Resources:     pl.embeddingResources(e.CapacityBytes),
				QPSPerReplica: e.QPS,
				NSPerInput:    e.NS,
				Replicas:      ceilDiv(targetQPS, e.QPS),
				ColdStart:     p.ColdStart(e.CapacityBytes),
				HPA: cluster.HPAPolicy{
					Deployment:  name,
					Kind:        cluster.MetricQPSPerReplica,
					Target:      e.QPS * HPAQPSHeadroom,
					MinReplicas: 1,
					Tolerance:   0.05,
				},
			})
		}
	}
	plan.AvgLatency = p.ElasticLatency(cfg, contacted, maxShardLat)
	return plan, nil
}

// TableBoundaries extracts the per-table shard boundaries from a plan in
// the layout serving.BuildElastic-style consumers need: boundaries[t] is
// table t's ascending boundary list. Works for both homogeneous and
// per-table plans.
func (p *Plan) TableBoundaries() ([][]int64, error) {
	out := make([][]int64, p.Model.NumTables)
	for _, s := range p.EmbeddingShards() {
		if s.Table < 0 || s.Table >= len(out) {
			return nil, fmt.Errorf("deploy: shard %s references table %d", s.Name, s.Table)
		}
		out[s.Table] = append(out[s.Table], s.RowHi)
	}
	for t, b := range out {
		if p.Policy == PolicyElastic && len(b) == 0 {
			return nil, fmt.Errorf("deploy: table %d has no shards", t)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				return nil, fmt.Errorf("deploy: table %d boundaries not increasing: %v", t, b)
			}
		}
	}
	return out, nil
}
