package deploy

import (
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// heteroCDFs builds CDFs with different localities per table: hot tables
// first, near-uniform last.
func heteroCDFs(t *testing.T, cfg model.Config) []partition.CDF {
	t.Helper()
	cdfs := make([]partition.CDF, cfg.NumTables)
	for i := range cdfs {
		p := 0.95 - 0.8*float64(i)/float64(cfg.NumTables)
		s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, p, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		cdfs[i] = s.Analytic()
	}
	return cdfs
}

func TestPlanElasticPerTable(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: per-table paper-scale planning (~4s)")
	}
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	cdfs := heteroCDFs(t, cfg)
	plan, err := pl.PlanElasticPerTable(cfg, 100, cdfs)
	if err != nil {
		t.Fatal(err)
	}
	// Every table must be fully covered by its own shard set.
	boundaries, err := plan.TableBoundaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(boundaries) != cfg.NumTables {
		t.Fatalf("tables = %d", len(boundaries))
	}
	shardCounts := map[int]int{}
	for tb, b := range boundaries {
		if b[len(b)-1] != cfg.RowsPerTable {
			t.Fatalf("table %d boundaries end at %d", tb, b[len(b)-1])
		}
		shardCounts[len(b)]++
	}
	// Heterogeneous localities should produce at least two distinct
	// per-table shard counts (hot tables split more aggressively).
	if len(shardCounts) < 2 {
		t.Fatalf("per-table plans are uniform (%v) despite heterogeneous CDFs", shardCounts)
	}
	// Still beats model-wise on memory.
	mw, err := pl.PlanModelWise(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalMemoryBytes() >= mw.TotalMemoryBytes() {
		t.Fatal("per-table elastic plan must beat model-wise")
	}
}

func TestPlanElasticPerTableValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: per-table paper-scale planning (~1s)")
	}
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	if _, err := pl.PlanElasticPerTable(cfg, 100, nil); err == nil {
		t.Fatal("want CDF arity error")
	}
	cdfs := heteroCDFs(t, cfg)
	cdfs[3] = nil
	if _, err := pl.PlanElasticPerTable(cfg, 100, cdfs); err == nil {
		t.Fatal("want nil-CDF error")
	}
	cdfs = heteroCDFs(t, cfg)
	small, err := workload.NewPowerLawSampler(10, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cdfs[0] = small.Analytic()
	if _, err := pl.PlanElasticPerTable(cfg, 100, cdfs); err == nil {
		t.Fatal("want row-count mismatch error")
	}
	if _, err := pl.PlanElasticPerTable(cfg, 0, heteroCDFs(t, cfg)); err == nil {
		t.Fatal("want target error")
	}
	empty := &Planner{}
	if _, err := empty.PlanElasticPerTable(cfg, 100, nil); err == nil {
		t.Fatal("want missing-profile error")
	}
}

func TestTableBoundariesFromHomogeneousPlan(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	plan, err := pl.PlanElastic(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	boundaries, err := plan.TableBoundaries()
	if err != nil {
		t.Fatal(err)
	}
	for tb := range boundaries {
		if len(boundaries[tb]) != plan.TablePlan.NumShards() {
			t.Fatalf("table %d has %d boundaries, want %d",
				tb, len(boundaries[tb]), plan.TablePlan.NumShards())
		}
	}
}
