package deploy

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/perfmodel"
)

func TestManifestsRenderElastic(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	plan, err := pl.PlanElastic(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	y := plan.Manifests()
	// One Deployment + one HPA per shard type (scaleTargetRef also says
	// "kind: Deployment", so anchor on the preceding apiVersion).
	if got := strings.Count(y, "apiVersion: apps/v1\nkind: Deployment"); got != len(plan.Shards) {
		t.Fatalf("deployments = %d, want %d", got, len(plan.Shards))
	}
	if got := strings.Count(y, "kind: HorizontalPodAutoscaler"); got != len(plan.Shards) {
		t.Fatalf("HPAs = %d, want %d", got, len(plan.Shards))
	}
	for _, want := range []string{
		"rm1-dense",
		"rm1-t0-s0",
		"queries_per_second",
		"p95_latency_seconds",
		"SHARD_ROW_LO",
		"readinessProbe",
	} {
		if !strings.Contains(y, want) {
			t.Fatalf("manifests missing %q", want)
		}
	}
	// Object names (metadata.name at indent 2) must be DNS-1123-safe.
	for _, line := range strings.Split(y, "\n") {
		if strings.HasPrefix(line, "  name: ") {
			val := strings.TrimSpace(strings.TrimPrefix(line, "  name: "))
			if val != strings.ToLower(val) || strings.ContainsAny(val, "_ ") {
				t.Fatalf("invalid object name %q", val)
			}
		}
	}
}

func TestManifestsRenderGPU(t *testing.T) {
	pl := planner(t, perfmodel.CPUGPU)
	plan, err := pl.PlanElastic(model.RM1(), 200)
	if err != nil {
		t.Fatal(err)
	}
	y := plan.Manifests()
	if !strings.Contains(y, "nvidia.com/gpu: 1") {
		t.Fatal("GPU request missing from dense shard manifest")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"RM1-dense":  "rm1-dense",
		"RM1_t0.s1":  "rm1-t0-s1",
		"--weird--":  "weird",
		"UPPER CASE": "upper-case",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
