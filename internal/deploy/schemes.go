package deploy

import (
	"fmt"

	"repro/internal/model"
)

// This file compares ElasticRec's hotness-sorted row-wise partitioning
// against the alternative table-partitioning plans discussed in the
// paper's related work (Mudigere et al.): table-wise and column-wise
// splits. Neither alternative can exploit access skew — a column shard
// participates in every gather regardless of hotness, and a table-wise
// "shard" is the whole table — which is why the paper partitions row-wise
// over the sorted table.

// SchemeMemory is the expected fleet memory of one partitioning scheme for
// a single table at the planner's DP target traffic.
type SchemeMemory struct {
	Scheme string
	// Shards is the shard count per table under the scheme.
	Shards int
	// MemoryBytes is the expected memory for one table's deployment.
	MemoryBytes float64
}

// CompareSchemes evaluates row-wise (the paper's DP), table-wise (one
// shard per table) and column-wise (dimension split into k shards) plans
// for one of cfg's tables under the same cost model, returning expected
// memory per scheme. Column-wise is evaluated at each k in columnSplits.
func (pl *Planner) CompareSchemes(cfg model.Config, columnSplits []int) ([]SchemeMemory, error) {
	cm, err := pl.CostModel(cfg)
	if err != nil {
		return nil, err
	}
	var out []SchemeMemory

	// Row-wise: Algorithm 2 over the sorted CDF.
	rowPlan, err := pl.Partitioner.Partition(cfg.RowsPerTable, cm.CostFunc())
	if err != nil {
		return nil, err
	}
	out = append(out, SchemeMemory{
		Scheme:      "row-wise (ElasticRec DP)",
		Shards:      rowPlan.NumShards(),
		MemoryBytes: rowPlan.Cost,
	})

	// Table-wise: the whole table is one shard; every query gathers the
	// full pooling factor from it.
	tableCost := cm.Cost(0, cfg.RowsPerTable)
	out = append(out, SchemeMemory{
		Scheme:      "table-wise",
		Shards:      1,
		MemoryBytes: tableCost,
	})

	// Column-wise: k shards each holding all rows at dim/k. Every shard
	// services every gather (n_s = pooling) at the reduced row width.
	for _, k := range columnSplits {
		if k < 1 || cfg.EmbeddingDim%k != 0 {
			return nil, fmt.Errorf("deploy: column split %d must divide dim %d", k, cfg.EmbeddingDim)
		}
		dim := cfg.EmbeddingDim / k
		qps := pl.Profile.ShardQPS(cfg.BatchSize, float64(cfg.Pooling), dim)
		replicas := cm.TargetTraffic / qps
		if replicas < 1 {
			replicas = 1
		}
		shardBytes := cfg.RowsPerTable*int64(dim)*4 + pl.Profile.MinMemAlloc
		out = append(out, SchemeMemory{
			Scheme:      fmt.Sprintf("column-wise k=%d", k),
			Shards:      k,
			MemoryBytes: float64(k) * replicas * float64(shardBytes),
		})
	}
	return out, nil
}
