package deploy

import (
	"testing"

	"repro/internal/model"
	"repro/internal/perfmodel"
)

func TestCompareSchemes(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	cfg := model.RM1()
	schemes, err := pl.CompareSchemes(cfg, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(schemes) != 4 {
		t.Fatalf("schemes = %d", len(schemes))
	}
	byName := map[string]SchemeMemory{}
	for _, s := range schemes {
		if s.MemoryBytes <= 0 || s.Shards < 1 {
			t.Fatalf("bad scheme row: %+v", s)
		}
		byName[s.Scheme] = s
	}
	row := byName["row-wise (ElasticRec DP)"]
	tab := byName["table-wise"]
	// The paper's core claim: skew-aware row-wise partitioning beats the
	// skew-blind alternatives.
	if row.MemoryBytes >= tab.MemoryBytes {
		t.Fatalf("row-wise %v must beat table-wise %v", row.MemoryBytes, tab.MemoryBytes)
	}
	for _, k := range []string{"column-wise k=2", "column-wise k=4"} {
		if row.MemoryBytes >= byName[k].MemoryBytes {
			t.Fatalf("row-wise %v must beat %s %v", row.MemoryBytes, k, byName[k].MemoryBytes)
		}
	}
}

func TestCompareSchemesValidation(t *testing.T) {
	pl := planner(t, perfmodel.CPUOnly)
	if _, err := pl.CompareSchemes(model.RM1(), []int{3}); err == nil {
		t.Fatal("want error for split not dividing dim")
	}
	if _, err := pl.CompareSchemes(model.RM1(), []int{0}); err == nil {
		t.Fatal("want error for zero split")
	}
	bad := model.RM1()
	bad.Pooling = 0
	if _, err := pl.CompareSchemes(bad, nil); err == nil {
		t.Fatal("want config error")
	}
}
