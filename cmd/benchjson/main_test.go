package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkServing_ConcurrentPredict/unbatched/clients=1-8         	     200	   5119561 ns/op	        39.06 qps	  123456 B/op	    1234 allocs/op
BenchmarkServing_EndToEndPredict-8   	    1000	    456789 ns/op	   98765 B/op	     321 allocs/op
BenchmarkFig19_DynamicTraffic-8      	       2	 600000000 ns/op	        31.5 peak-mem-ratio-x
BenchmarkScenario_Steady-8           	       1	 900000000 ns/op	       118.5 qps	       120.0 offered-qps	         3.25 p50-ms	         8.5 p95-ms	        12.75 p99-ms	         0.001 err-rate	         2 swaps
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	r0 := results[0]
	if r0.Name != "BenchmarkServing_ConcurrentPredict/unbatched/clients=1" {
		t.Fatalf("name = %q (proc suffix not trimmed?)", r0.Name)
	}
	if r0.Iterations != 200 || r0.NsPerOp != 5119561 || r0.QPS != 39.06 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.BytesPerOp != 123456 || r0.AllocsPerOp != 1234 {
		t.Fatalf("r0 mem = %+v", r0)
	}
	if results[1].QPS != 0 || results[1].AllocsPerOp != 321 {
		t.Fatalf("r1 = %+v", results[1])
	}
	if results[2].Extra["peak-mem-ratio-x"] != 31.5 {
		t.Fatalf("r2 extra = %+v", results[2].Extra)
	}
	// Scenario-style units land in the typed fields of the shared schema,
	// with unrecognized units preserved in Extra.
	r3 := results[3]
	if r3.QPS != 118.5 || r3.OfferedQPS != 120 {
		t.Fatalf("r3 rates = %+v", r3)
	}
	if r3.P50Ms != 3.25 || r3.P95Ms != 8.5 || r3.P99Ms != 12.75 || r3.ErrorRate != 0.001 {
		t.Fatalf("r3 latencies = %+v", r3)
	}
	if r3.Extra["swaps"] != 2 {
		t.Fatalf("r3 extra = %+v", r3.Extra)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	results, err := parseBench(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %v", results)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":         "BenchmarkFoo",
		"BenchmarkFoo/bar-16":    "BenchmarkFoo/bar",
		"BenchmarkFoo/clients=1": "BenchmarkFoo/clients=1",
		"BenchmarkFoo":           "BenchmarkFoo",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestModelSegment(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkServing_MultiModelPredict/model=hot/clients=4": "hot",
		"BenchmarkServing_MultiModelPredict/clients=4/model=b":   "b",
		"BenchmarkServing_ConcurrentPredict/unbatched/clients=1": "",
		"BenchmarkFoo": "",
	} {
		if got := modelSegment(in); got != want {
			t.Fatalf("modelSegment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchPerModelEntries(t *testing.T) {
	const multi = `BenchmarkServing_MultiModelPredict/model=hot/clients=4-8     100   200000 ns/op   512.5 qps
BenchmarkServing_MultiModelPredict/model=slow/clients=4-8    100   400000 ns/op   256.25 qps
`
	results, err := parseBench(strings.NewReader(multi))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	if results[0].Model != "hot" || results[1].Model != "slow" {
		t.Fatalf("models = %q/%q, want hot/slow", results[0].Model, results[1].Model)
	}
	if results[0].QPS != 512.5 || results[1].QPS != 256.25 {
		t.Fatalf("qps = %v/%v", results[0].QPS, results[1].QPS)
	}
}
