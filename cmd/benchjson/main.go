// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout, so CI can archive the serving
// bench trajectory as an artifact (BENCH_serving.json) and diff it
// run-over-run instead of eyeballing text logs.
//
// Usage:
//
//	go test -run='^$' -bench=Serving -benchmem . | benchjson > BENCH_serving.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one benchmark line, flattened.
type BenchResult struct {
	Name string `json:"name"`
	// Model is the DLRM variant the row measures, extracted from a
	// "model=NAME" path segment of multi-model sub-benchmarks (e.g.
	// BenchmarkServing_MultiModelPredict/model=hot/clients=4). Empty for
	// single-model rows, so per-model serving trajectories can be
	// filtered and diffed run-over-run.
	Model       string  `json:"model,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// QPS carries the serving benches' custom throughput metric
	// (b.ReportMetric(..., "qps")), 0 when the bench doesn't report one.
	QPS float64 `json:"qps,omitempty"`
	// Extra holds any remaining custom metrics by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// parseBench extracts benchmark results from go test -bench output.
func parseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... [no tests to run]"
		}
		res := BenchResult{
			// Strip the -GOMAXPROCS suffix so names are stable across
			// machines.
			Name:       trimProcSuffix(fields[0]),
			Model:      modelSegment(trimProcSuffix(fields[0])),
			Iterations: iters,
		}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "qps":
				res.QPS = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[fields[i+1]] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// modelSegment extracts the variant name from a "model=NAME" path segment
// of a sub-benchmark name ("" when the bench is not per-model).
func modelSegment(name string) string {
	for _, seg := range strings.Split(name, "/") {
		if m, ok := strings.CutPrefix(seg, "model="); ok {
			return m
		}
	}
	return ""
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker from a bench
// name (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar).
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []BenchResult{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
