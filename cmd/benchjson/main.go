// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout (internal/benchio rows), so CI can
// archive the serving bench trajectory as an artifact (BENCH_serving.json)
// and diff it run-over-run instead of eyeballing text logs. Custom metrics
// reported under the shared artifact schema's unit names (qps, offered-qps,
// p50-ms, p95-ms, p99-ms, err-rate) land in their typed fields; anything
// else is preserved in Extra.
//
// Usage:
//
//	go test -run='^$' -bench=Serving -benchmem . | benchjson > BENCH_serving.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchio"
)

// parseBench extracts benchmark results from go test -bench output.
func parseBench(r io.Reader) ([]benchio.Row, error) {
	var out []benchio.Row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... [no tests to run]"
		}
		res := benchio.Row{
			// Strip the -GOMAXPROCS suffix so names are stable across
			// machines.
			Name:       trimProcSuffix(fields[0]),
			Model:      modelSegment(trimProcSuffix(fields[0])),
			Iterations: iters,
		}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "qps":
				res.QPS = v
			case "offered-qps":
				res.OfferedQPS = v
			case "p50-ms":
				res.P50Ms = v
			case "p95-ms":
				res.P95Ms = v
			case "p99-ms":
				res.P99Ms = v
			case "err-rate":
				res.ErrorRate = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[fields[i+1]] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// modelSegment extracts the variant name from a "model=NAME" path segment
// of a sub-benchmark name ("" when the bench is not per-model).
func modelSegment(name string) string {
	for _, seg := range strings.Split(name, "/") {
		if m, ok := strings.CutPrefix(seg, "model="); ok {
			return m
		}
	}
	return ""
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker from a bench
// name (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar).
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []benchio.Row{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
