// Command elasticrec regenerates every table and figure of the ElasticRec
// paper (ISCA 2024) from this repository's implementation.
//
// Usage:
//
//	elasticrec <experiment> [...]
//	elasticrec all
//
// Experiments: tables, fig3, fig5, fig6, fig9, fig12a, fig12b, fig12c,
// fig12d, fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig20,
// schemes, stress, repartition, multimodel.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
)

type experiment struct {
	name string
	desc string
	run  func() (*core.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"tables", "Tables I & II: workload configurations", func() (*core.Table, error) { return core.TablesIandII(), nil }},
		{"fig3", "Fig. 3: dense vs sparse occupancy", core.Figure3},
		{"fig5", "Fig. 5: per-layer QPS", core.Figure5},
		{"fig6", "Fig. 6: access-frequency distributions", func() (*core.Table, error) { return core.Figure6(0, 0) }},
		{"fig9", "Fig. 9: gather QPS curve", core.Figure9},
		{"fig12a", "Fig. 12a: memory vs MLP size", core.Figure12a},
		{"fig12b", "Fig. 12b: memory vs locality", core.Figure12b},
		{"fig12c", "Fig. 12c: memory vs table count", core.Figure12c},
		{"fig12d", "Fig. 12d: memory vs shard count", core.Figure12d},
		{"fig13", "Fig. 13: CPU-only memory", core.Figure13},
		{"fig14", "Fig. 14: CPU-only memory utility", core.Figure14},
		{"fig15", "Fig. 15: CPU-only server count", core.Figure15},
		{"fig16", "Fig. 16: CPU-GPU memory", core.Figure16},
		{"fig17", "Fig. 17: CPU-GPU memory utility", core.Figure17},
		{"fig18", "Fig. 18: CPU-GPU server count", core.Figure18},
		{"fig19", "Fig. 19: dynamic traffic timeline", core.Figure19},
		{"fig20", "Fig. 20: GPU embedding cache baseline", core.Figure20},
		{"schemes", "Extension: row-wise vs column-/table-wise partitioning", core.SchemesTable},
		{"stress", "Sec. IV-D: live shard QPSmax stress test", core.StressTable},
		{"repartition", "Sec. IV-B: closed profiling/repartition/serve loop", core.RepartitionTable},
		{"multimodel", "Multi-model routing: one frontend, independently repartitioned variants", core.MultiModelTable},
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: elasticrec <experiment> [...] | all")
	fmt.Fprintln(os.Stderr, "experiments:")
	exps := experiments()
	names := make([]string, 0, len(exps))
	byName := map[string]experiment{}
	for _, e := range exps {
		names = append(names, e.name)
		byName[e.name] = e
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", n, byName[n].desc)
	}
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	exps := experiments()
	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	var selected []experiment
	if len(args) == 1 && strings.EqualFold(args[0], "all") {
		selected = exps
	} else {
		for _, a := range args {
			e, ok := byName[strings.ToLower(a)]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", a)
				usage()
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
}
