// Command elasticrec regenerates every table and figure of the ElasticRec
// paper (ISCA 2024) from this repository's implementation, and doubles as
// the fleet admin CLI for a running multi-model frontend.
//
// Usage:
//
//	elasticrec [-short] <experiment> [...]
//	elasticrec all
//	elasticrec [-short] scenario -config FILE|DIR [-out DIR]
//	elasticrec admin -addr HOST:PORT [-frontend NAME] status [model]
//	elasticrec admin -addr HOST:PORT [-frontend NAME] undeploy <model>
//	elasticrec admin -addr HOST:PORT [-frontend NAME] deploy -model NAME [options]
//
// Experiments: tables, fig3, fig5, fig6, fig9, fig12a, fig12b, fig12c,
// fig12d, fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig20,
// schemes, stress, repartition, multimodel, lifecycle.
//
// The scenario subcommand runs declarative experiment specs (see
// internal/scenario and docs/SCENARIOS.md): each spec stands up a live
// multi-model deployment, drives shaped Poisson traffic through the
// exported frontend, injects the spec's fault/lifecycle timeline, and
// writes a BENCH_scenario_<name>.json artifact cmd/scenarioguard diffs
// against its checked-in baseline.
//
// The admin subcommand drives the versioned control-plane endpoints
// (Admin.Deploy / Admin.Undeploy / Admin.Status) exported on a frontend's
// TCP listener: deploy builds and publishes a new variant into the running
// frontend, undeploy drains one out (the name becomes reusable), status
// snapshots every served variant.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

type experiment struct {
	name string
	desc string
	run  func() (*core.Table, error)
}

// short is the global -short flag: experiments that support it trim their
// closed loops for smoke runs (CI runs `elasticrec -short lifecycle`).
var short = flag.Bool("short", false, "trim closed-loop experiments for smoke runs")

func experiments() []experiment {
	return []experiment{
		{"tables", "Tables I & II: workload configurations", func() (*core.Table, error) { return core.TablesIandII(), nil }},
		{"fig3", "Fig. 3: dense vs sparse occupancy", core.Figure3},
		{"fig5", "Fig. 5: per-layer QPS", core.Figure5},
		{"fig6", "Fig. 6: access-frequency distributions", func() (*core.Table, error) { return core.Figure6(0, 0) }},
		{"fig9", "Fig. 9: gather QPS curve", core.Figure9},
		{"fig12a", "Fig. 12a: memory vs MLP size", core.Figure12a},
		{"fig12b", "Fig. 12b: memory vs locality", core.Figure12b},
		{"fig12c", "Fig. 12c: memory vs table count", core.Figure12c},
		{"fig12d", "Fig. 12d: memory vs shard count", core.Figure12d},
		{"fig13", "Fig. 13: CPU-only memory", core.Figure13},
		{"fig14", "Fig. 14: CPU-only memory utility", core.Figure14},
		{"fig15", "Fig. 15: CPU-only server count", core.Figure15},
		{"fig16", "Fig. 16: CPU-GPU memory", core.Figure16},
		{"fig17", "Fig. 17: CPU-GPU memory utility", core.Figure17},
		{"fig18", "Fig. 18: CPU-GPU server count", core.Figure18},
		{"fig19", "Fig. 19: dynamic traffic timeline", core.Figure19},
		{"fig20", "Fig. 20: GPU embedding cache baseline", core.Figure20},
		{"schemes", "Extension: row-wise vs column-/table-wise partitioning", core.SchemesTable},
		{"stress", "Sec. IV-D: live shard QPSmax stress test", core.StressTable},
		{"repartition", "Sec. IV-B: closed profiling/repartition/serve loop", core.RepartitionTable},
		{"multimodel", "Multi-model routing: one frontend, independently repartitioned variants", core.MultiModelTable},
		{"lifecycle", "Model lifecycle: deploy/undeploy variants over the admin API", func() (*core.Table, error) { return core.LifecycleTable(*short) }},
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: elasticrec [-short] <experiment> [...] | all")
	fmt.Fprintln(os.Stderr, "       elasticrec [-short] scenario -config FILE|DIR [-out DIR]")
	fmt.Fprintln(os.Stderr, "       elasticrec admin -addr HOST:PORT [-frontend NAME] status|deploy|undeploy ...")
	fmt.Fprintln(os.Stderr, "experiments:")
	exps := experiments()
	names := make([]string, 0, len(exps))
	byName := map[string]experiment{}
	for _, e := range exps {
		names = append(names, e.name)
		byName[e.name] = e
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", n, byName[n].desc)
	}
}

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if strings.EqualFold(args[0], "admin") {
		if err := runAdmin(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "admin: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if strings.EqualFold(args[0], "scenario") {
		if err := runScenario(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	exps := experiments()
	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	var selected []experiment
	if len(args) == 1 && strings.EqualFold(args[0], "all") {
		selected = exps
	} else {
		for _, a := range args {
			e, ok := byName[strings.ToLower(a)]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", a)
				usage()
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
}

// runAdmin drives the control plane of a running frontend over its
// versioned admin RPC endpoints.
func runAdmin(args []string) error {
	fs := flag.NewFlagSet("admin", flag.ExitOnError)
	addr := fs.String("addr", "", "frontend address (HOST:PORT), required")
	frontend := fs.String("frontend", "Frontend", "frontend service name the deployment was exported under")
	timeout := fs.Duration("timeout", time.Minute, "per-operation deadline")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: elasticrec admin -addr HOST:PORT [-frontend NAME] <verb> ...")
		fmt.Fprintln(os.Stderr, "verbs:")
		fmt.Fprintln(os.Stderr, "  status [model]          per-variant control-plane snapshot")
		fmt.Fprintln(os.Stderr, "  undeploy <model>        drain the variant out of the frontend")
		fmt.Fprintln(os.Stderr, "  deploy -model NAME [-rows N -tables N -seed N -window N -transport local|tcp]")
		fmt.Fprintln(os.Stderr, "                          build and publish a new variant (spec-based)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" || fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("need -addr and a verb")
	}
	client, err := serving.DialAdmin(*addr, *frontend)
	if err != nil {
		return err
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch verb := fs.Arg(0); verb {
	case "status":
		mdl := fs.Arg(1)
		sts, err := client.Status(ctx, mdl)
		if err != nil {
			return err
		}
		printStatus(sts)
		return nil
	case "undeploy":
		if fs.NArg() < 2 {
			return fmt.Errorf("undeploy needs a model name")
		}
		reply, err := client.Undeploy(ctx, fs.Arg(1))
		if err != nil {
			return err
		}
		fmt.Printf("undeployed %q: drained, unregistered, name reusable\n", reply.Model)
		return nil
	case "deploy":
		return runAdminDeploy(ctx, client, fs.Args()[1:])
	default:
		fs.Usage()
		return fmt.Errorf("unknown admin verb %q", verb)
	}
}

// runAdminDeploy assembles a deploy spec from flags: the variant's model
// is instantiated frontend-side from (config, seed), and the profiling
// window is synthesized here from the configured power-law locality —
// the client ships counts, never weights.
func runAdminDeploy(ctx context.Context, client *serving.AdminClient, args []string) error {
	fs := flag.NewFlagSet("admin deploy", flag.ExitOnError)
	name := fs.String("model", "", "variant name to serve under (required)")
	rows := fs.Int64("rows", 12_000, "embedding rows per table")
	tables := fs.Int("tables", 2, "number of embedding tables")
	seed := fs.Uint64("seed", 1, "parameter seed (frontend runs model.New(config, seed))")
	window := fs.Int("window", 120, "profiling-window queries synthesized per table")
	transport := fs.String("transport", "local", "shard transport: local or tcp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("deploy needs -model")
	}
	cfg := model.RM1().WithRows(*rows).WithName(*name)
	cfg.NumTables = *tables

	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		return err
	}
	gen, err := workload.NewQueryGenerator(sampler, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, *seed)
	if err != nil {
		return err
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < *window; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		return err
	}
	counts := make([][]int64, len(stats))
	for t, st := range stats {
		counts[t] = st.Counts
	}
	// Proportional CDF cuts (70% / 95% coverage) stand in for the DP at
	// CLI scale, mirroring the liveserving replanner.
	boundaries := embedding.NewCDF(stats[0]).ProportionalCuts(0.70, 0.95)

	var reply serving.AdminDeployReply
	if err := client.Deploy(ctx, &serving.AdminDeployRequest{
		Name: *name, Config: cfg, Seed: *seed,
		Counts: counts, Boundaries: boundaries,
		Options: serving.BuildOptions{Transport: serving.Transport(*transport)},
	}, &reply); err != nil {
		return err
	}
	fmt.Printf("deployed %q: epoch %d, %d shards, boundaries %v\n",
		reply.Model, reply.Epoch, reply.Shards, boundaries)
	return nil
}

// printStatus renders per-model snapshots as an aligned table.
func printStatus(sts []serving.ModelStatus) {
	tab := &core.Table{
		Title:  "frontend model status",
		Header: []string{"model", "epoch", "swaps", "shards", "served", "offered qps", "utility skew", "cached tables"},
	}
	for _, st := range sts {
		tab.Rows = append(tab.Rows, []string{
			st.Model,
			fmt.Sprintf("%d", st.Epoch),
			fmt.Sprintf("%d", st.Swaps),
			fmt.Sprintf("%d", st.Shards),
			fmt.Sprintf("%d", st.Served),
			fmt.Sprintf("%.1f", st.OfferedQPS),
			fmt.Sprintf("%.2f", st.UtilitySkew),
			metrics.FormatBytes(st.Counters.CachedSortedBytes),
		})
	}
	fmt.Println(tab.String())
}
