package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// runScenario executes declarative scenario specs (internal/scenario): one
// JSON file, or every *.json spec directly inside a directory. Each run
// prints a summary table and writes its BENCH_scenario_<name>.json
// artifact into -out. The global -short flag compresses every spec's
// timeline for smoke runs.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	config := fs.String("config", "", "scenario spec file, or a directory of *.json specs (required)")
	out := fs.String("out", ".", "directory to write BENCH_scenario_*.json artifacts into")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: elasticrec [-short] scenario -config FILE|DIR [-out DIR]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *config == "" {
		fs.Usage()
		return fmt.Errorf("need -config")
	}
	paths, err := specPaths(*config)
	if err != nil {
		return err
	}
	for _, path := range paths {
		spec, err := scenario.ParseFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("== scenario %s (%s)\n", spec.Name, path)
		res, err := scenario.Run(spec, scenario.Options{
			Short: *short,
			Logf: func(format string, a ...any) {
				fmt.Printf("   "+format+"\n", a...)
			},
		})
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		fmt.Println(scenarioTable(res).String())
		artifact, err := res.WriteArtifact(*out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", artifact)
	}
	return nil
}

// specPaths resolves -config to the ordered list of spec files to run.
func specPaths(config string) ([]string, error) {
	info, err := os.Stat(config)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{config}, nil
	}
	paths, err := filepath.Glob(filepath.Join(config, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", config)
	}
	sort.Strings(paths)
	return paths, nil
}

// scenarioTable renders a run's total, per-model and per-phase metrics.
func scenarioTable(res *scenario.Result) *core.Table {
	tab := &core.Table{
		Title:  fmt.Sprintf("scenario %s (%v, warmup %v, %d events)", res.Name, res.Duration, res.Warmup, len(res.Events)),
		Header: []string{"scope", "requests", "errors", "offered qps", "qps", "p50", "p95", "p99"},
	}
	row := func(scope string, m scenario.Metrics) []string {
		return []string{
			scope,
			fmt.Sprintf("%d", m.Requests),
			fmt.Sprintf("%d", m.Errors),
			fmt.Sprintf("%.1f", m.OfferedQPS),
			fmt.Sprintf("%.1f", m.AchievedQPS),
			m.P50.Round(10 * time.Microsecond).String(),
			m.P95.Round(10 * time.Microsecond).String(),
			m.P99.Round(10 * time.Microsecond).String(),
		}
	}
	tab.Rows = append(tab.Rows, row("total", res.Total))
	for _, mr := range res.Models {
		tab.Rows = append(tab.Rows, row("model "+mr.Model, mr.Metrics))
	}
	if len(res.Phases) > 1 {
		for _, ph := range res.Phases {
			tab.Rows = append(tab.Rows, row("phase "+ph.Name, ph.Metrics))
		}
	}
	return tab
}
