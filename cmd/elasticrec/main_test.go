package main

import (
	"strings"
	"testing"
)

func TestExperimentRegistryComplete(t *testing.T) {
	exps := experiments()
	want := []string{
		"tables", "fig3", "fig5", "fig6", "fig9",
		"fig12a", "fig12b", "fig12c", "fig12d",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"schemes", "stress", "repartition", "multimodel", "lifecycle",
	}
	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	for _, name := range want {
		e, ok := byName[name]
		if !ok {
			t.Errorf("experiment %s missing from registry", name)
			continue
		}
		if e.run == nil || e.desc == "" {
			t.Errorf("experiment %s incomplete", name)
		}
	}
	if len(exps) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(exps), len(want))
	}
}

func TestFastExperimentsProduceTables(t *testing.T) {
	// Run the cheap experiments end-to-end through the registry; the
	// expensive ones are covered by internal/core tests and benchmarks.
	fast := map[string]bool{"tables": true, "fig3": true, "fig5": true, "fig9": true}
	for _, e := range experiments() {
		if !fast[e.name] {
			continue
		}
		tab, err := e.run()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", e.name)
		}
		if !strings.Contains(tab.String(), tab.Header[0]) {
			t.Fatalf("%s: render broken", e.name)
		}
	}
}
