// Command benchguard compares two BENCH_serving.json-style files (see
// cmd/benchjson and internal/benchio) and fails when a benchmark regressed
// past a threshold against the checked-in baseline. CI runs it after the
// smoke benches so a regression on the Predict hot path fails the build
// instead of silently accreting. Two metrics are judged: allocs/op with a
// tight threshold (deterministic across runner hardware) and ns/op with a
// deliberately generous one (wall time is noisy on shared runners, so the
// ns/op gate only catches order-of-magnitude blowups — an accidental
// O(n²), a lost fast path — not percent-level drift). Whole-scenario
// artifacts are guarded by the companion cmd/scenarioguard.
//
// Usage:
//
//	benchguard -baseline BENCH_serving.json -current bench-guard.json \
//	    -filter Predict -max-regress 0.25 -max-ns-regress 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchio"
)

// regression describes one benchmark metric that got worse past its
// threshold.
type regression struct {
	name             string
	metric           string // "allocs/op" or "ns/op"
	baseline, actual float64
	threshold        float64
}

// check compares current against baseline for names matching filter
// (comma-separated substrings): allocs/op against maxRegress and ns/op
// against maxNsRegress (fractions: 0.25 allows +25%; a negative
// maxNsRegress disables the ns/op gate). Benches absent from either side,
// or with a zero baseline for a metric, are skipped — new benches must
// not fail the guard retroactively.
func check(baseline, current map[string]benchio.Row, filter string, maxRegress, maxNsRegress float64) (compared int, regs []regression) {
	for name, base := range baseline {
		if !benchio.MatchesAny(name, filter) {
			continue
		}
		cur, ok := current[name]
		if !ok {
			continue
		}
		judged := false
		if base.AllocsPerOp > 0 {
			judged = true
			if cur.AllocsPerOp > base.AllocsPerOp*(1+maxRegress) {
				regs = append(regs, regression{name: name, metric: "allocs/op",
					baseline: base.AllocsPerOp, actual: cur.AllocsPerOp, threshold: maxRegress})
			}
		}
		if maxNsRegress >= 0 && base.NsPerOp > 0 {
			judged = true
			if cur.NsPerOp > base.NsPerOp*(1+maxNsRegress) {
				regs = append(regs, regression{name: name, metric: "ns/op",
					baseline: base.NsPerOp, actual: cur.NsPerOp, threshold: maxNsRegress})
			}
		}
		if judged {
			compared++
		}
	}
	return compared, regs
}

// load reads an artifact into a name-keyed map.
func load(path string) (map[string]benchio.Row, error) {
	rows, err := benchio.LoadRows(path)
	if err != nil {
		return nil, err
	}
	return benchio.ByName(rows), nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_serving.json", "checked-in baseline artifact")
	currentPath := flag.String("current", "", "freshly measured artifact to judge")
	filter := flag.String("filter", "Predict", "only guard benchmark names containing one of these comma-separated substrings")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional allocs/op regression (0.25 = +25%)")
	maxNsRegress := flag.Float64("max-ns-regress", 1.0, "allowed fractional ns/op regression (1.0 = +100%; negative disables)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	compared, regs := check(baseline, current, *filter, *maxRegress, *maxNsRegress)
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no %q benches in common between %s and %s\n",
			*filter, *baselinePath, *currentPath)
		os.Exit(2)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchguard: %s %s regressed %.0f -> %.0f (>%+.0f%%)\n",
				r.name, r.metric, r.baseline, r.actual, r.threshold*100)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benches within +%.0f%% allocs/op (+%.0f%% ns/op) of baseline\n",
		compared, *maxRegress*100, *maxNsRegress*100)
}
