// Command benchguard compares two BENCH_serving.json-style files (see
// cmd/benchjson) and fails when a benchmark's allocs/op regressed past a
// threshold against the checked-in baseline. CI runs it after the smoke
// benches so an allocation regression on the Predict hot path fails the
// build instead of silently accreting; allocs/op is compared (not ns/op)
// because it is deterministic across runner hardware.
//
// Usage:
//
//	benchguard -baseline BENCH_serving.json -current bench-guard.json \
//	    -filter Predict -max-regress 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// BenchRow is the subset of cmd/benchjson's output benchguard compares.
type BenchRow struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// loadRows reads a benchjson artifact into a name-keyed map.
func loadRows(path string) (map[string]BenchRow, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []BenchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]BenchRow, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out, nil
}

// regression describes one benchmark that got worse past the threshold.
type regression struct {
	name             string
	baseline, actual float64
}

// matchesAny reports whether name contains at least one of the
// comma-separated substrings in filter (an empty filter matches all).
func matchesAny(name, filter string) bool {
	if filter == "" {
		return true
	}
	for _, sub := range strings.Split(filter, ",") {
		if sub != "" && strings.Contains(name, sub) {
			return true
		}
	}
	return false
}

// check compares current against baseline on allocs/op for names matching
// filter (comma-separated substrings), returning the regressions past
// maxRegress (a fraction: 0.25 allows +25%). Benches absent from either
// side, or with a zero baseline, are skipped — new benches must not fail
// the guard retroactively.
func check(baseline, current map[string]BenchRow, filter string, maxRegress float64) (compared int, regs []regression) {
	for name, base := range baseline {
		if !matchesAny(name, filter) {
			continue
		}
		cur, ok := current[name]
		if !ok || base.AllocsPerOp <= 0 {
			continue
		}
		compared++
		if cur.AllocsPerOp > base.AllocsPerOp*(1+maxRegress) {
			regs = append(regs, regression{name: name, baseline: base.AllocsPerOp, actual: cur.AllocsPerOp})
		}
	}
	return compared, regs
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_serving.json", "checked-in baseline artifact")
	currentPath := flag.String("current", "", "freshly measured artifact to judge")
	filter := flag.String("filter", "Predict", "only guard benchmark names containing one of these comma-separated substrings")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional allocs/op regression (0.25 = +25%)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	baseline, err := loadRows(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := loadRows(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	compared, regs := check(baseline, current, *filter, *maxRegress)
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no %q benches in common between %s and %s\n",
			*filter, *baselinePath, *currentPath)
		os.Exit(2)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchguard: %s allocs/op regressed %.0f -> %.0f (>%+.0f%%)\n",
				r.name, r.baseline, r.actual, *maxRegress*100)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benches within +%.0f%% allocs/op of baseline\n", compared, *maxRegress*100)
}
