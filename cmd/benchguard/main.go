// Command benchguard compares two BENCH_serving.json-style files (see
// cmd/benchjson and internal/benchio) and fails when a benchmark's
// allocs/op regressed past a threshold against the checked-in baseline. CI
// runs it after the smoke benches so an allocation regression on the
// Predict hot path fails the build instead of silently accreting;
// allocs/op is compared (not ns/op) because it is deterministic across
// runner hardware. Whole-scenario artifacts are guarded by the companion
// cmd/scenarioguard.
//
// Usage:
//
//	benchguard -baseline BENCH_serving.json -current bench-guard.json \
//	    -filter Predict -max-regress 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchio"
)

// regression describes one benchmark that got worse past the threshold.
type regression struct {
	name             string
	baseline, actual float64
}

// check compares current against baseline on allocs/op for names matching
// filter (comma-separated substrings), returning the regressions past
// maxRegress (a fraction: 0.25 allows +25%). Benches absent from either
// side, or with a zero baseline, are skipped — new benches must not fail
// the guard retroactively.
func check(baseline, current map[string]benchio.Row, filter string, maxRegress float64) (compared int, regs []regression) {
	for name, base := range baseline {
		if !benchio.MatchesAny(name, filter) {
			continue
		}
		cur, ok := current[name]
		if !ok || base.AllocsPerOp <= 0 {
			continue
		}
		compared++
		if cur.AllocsPerOp > base.AllocsPerOp*(1+maxRegress) {
			regs = append(regs, regression{name: name, baseline: base.AllocsPerOp, actual: cur.AllocsPerOp})
		}
	}
	return compared, regs
}

// load reads an artifact into a name-keyed map.
func load(path string) (map[string]benchio.Row, error) {
	rows, err := benchio.LoadRows(path)
	if err != nil {
		return nil, err
	}
	return benchio.ByName(rows), nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_serving.json", "checked-in baseline artifact")
	currentPath := flag.String("current", "", "freshly measured artifact to judge")
	filter := flag.String("filter", "Predict", "only guard benchmark names containing one of these comma-separated substrings")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional allocs/op regression (0.25 = +25%)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	compared, regs := check(baseline, current, *filter, *maxRegress)
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no %q benches in common between %s and %s\n",
			*filter, *baselinePath, *currentPath)
		os.Exit(2)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchguard: %s allocs/op regressed %.0f -> %.0f (>%+.0f%%)\n",
				r.name, r.baseline, r.actual, *maxRegress*100)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benches within +%.0f%% allocs/op of baseline\n", compared, *maxRegress*100)
}
