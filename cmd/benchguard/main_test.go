package main

import (
	"testing"

	"repro/internal/benchio"
)

func rows(pairs map[string]float64) map[string]benchio.Row {
	out := make(map[string]benchio.Row, len(pairs))
	for name, allocs := range pairs {
		out[name] = benchio.Row{Name: name, AllocsPerOp: allocs}
	}
	return out
}

func nsRows(pairs map[string]float64) map[string]benchio.Row {
	out := make(map[string]benchio.Row, len(pairs))
	for name, ns := range pairs {
		out[name] = benchio.Row{Name: name, NsPerOp: ns}
	}
	return out
}

func TestCheckPassesWithinThreshold(t *testing.T) {
	base := rows(map[string]float64{"BenchmarkServing_EndToEndPredict": 100})
	cur := rows(map[string]float64{"BenchmarkServing_EndToEndPredict": 124})
	compared, regs := check(base, cur, "Predict", 0.25, 1.0)
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("compared=%d regs=%v, want 1 compared and no regressions", compared, regs)
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	base := rows(map[string]float64{"BenchmarkServing_EndToEndPredict": 100})
	cur := rows(map[string]float64{"BenchmarkServing_EndToEndPredict": 126})
	_, regs := check(base, cur, "Predict", 0.25, 1.0)
	if len(regs) != 1 {
		t.Fatalf("regs = %v, want the +26%% regression flagged", regs)
	}
	if regs[0].baseline != 100 || regs[0].actual != 126 {
		t.Fatalf("regs[0] = %+v", regs[0])
	}
}

func TestCheckGatesNsPerOp(t *testing.T) {
	base := nsRows(map[string]float64{"BenchmarkServing_EndToEndPredict": 1000})
	// +150% wall time trips the generous ns/op gate...
	cur := nsRows(map[string]float64{"BenchmarkServing_EndToEndPredict": 2500})
	compared, regs := check(base, cur, "Predict", 0.25, 1.0)
	if compared != 1 || len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("compared=%d regs=%v, want the ns/op blowup flagged", compared, regs)
	}
	// ...+80% does not...
	cur = nsRows(map[string]float64{"BenchmarkServing_EndToEndPredict": 1800})
	if _, regs := check(base, cur, "Predict", 0.25, 1.0); len(regs) != 0 {
		t.Fatalf("regs = %v, want +80%% ns/op tolerated", regs)
	}
	// ...and a negative threshold disables the gate entirely.
	cur = nsRows(map[string]float64{"BenchmarkServing_EndToEndPredict": 99999})
	if compared, regs := check(base, cur, "Predict", 0.25, -1); compared != 0 || len(regs) != 0 {
		t.Fatalf("compared=%d regs=%v, want ns-only rows skipped with the gate off", compared, regs)
	}
}

func TestCheckSkipsUnmatchedAndFiltered(t *testing.T) {
	base := rows(map[string]float64{
		"BenchmarkServing_EndToEndPredict":  100,
		"BenchmarkServing_Repartition/cold": 200, // filtered out
		"BenchmarkGoneFromCurrent":          50,  // no current row
		"BenchmarkServing_ZeroPredict":      0,   // zero baseline
	})
	cur := rows(map[string]float64{
		"BenchmarkServing_EndToEndPredict":  9999, // regressed but we only count it once
		"BenchmarkServing_Repartition/cold": 9999,
		"BenchmarkServing_ZeroPredict":      10,
	})
	compared, regs := check(base, cur, "Predict", 0.25, 1.0)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1 (filtered/unmatched/zero rows skipped)", compared)
	}
	if len(regs) != 1 || regs[0].name != "BenchmarkServing_EndToEndPredict" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestMatchesAnyCommaSeparated(t *testing.T) {
	for _, tc := range []struct {
		name, filter string
		want         bool
	}{
		{"BenchmarkServing_EndToEndPredict", "Serving_EndToEndPredict,Serving_Repartition", true},
		{"BenchmarkServing_Repartition/cache-hit", "Serving_EndToEndPredict,Serving_Repartition", true},
		{"BenchmarkServing_ConcurrentPredict/batched/clients=8", "Serving_EndToEndPredict,Serving_Repartition", false},
		{"BenchmarkAnything", "", true},
	} {
		if got := benchio.MatchesAny(tc.name, tc.filter); got != tc.want {
			t.Fatalf("MatchesAny(%q, %q) = %v, want %v", tc.name, tc.filter, got, tc.want)
		}
	}
}
