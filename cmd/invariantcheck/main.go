// Command invariantcheck is the multichecker driver for the module's
// invariant analyzer suite (internal/analysis): it loads the given
// package patterns, typechecks them with go/types, runs the four
// registered passes — epochpin (routing epochs acquired must be
// released on every path), poolpair (wire pool slices must be recycled
// or handed to a tracked sink), atomicfield (no mixed atomic/plain
// field access), ctxflow (contexts are threaded first-param, new roots
// only in main/tests) — and prints findings as
//
//	file:line: [pass] message
//
// exiting 1 when any survive their //lint:escape suppressions. CI runs
// it as `make lint-invariants` over ./internal/... and ./cmd/...; the
// suite catches pairing bugs on paths no test exercises, at lint time.
//
// Usage:
//
//	invariantcheck [-list] [pattern ...]   (default: ./internal/... ./cmd/...)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/epochpin"
	"repro/internal/analysis/passes/poolpair"
)

func main() {
	list := flag.Bool("list", false, "list registered passes and exit")
	flag.Parse()

	a := analysis.NewAnalyzer()
	for _, p := range []analysis.Pass{epochpin.Pass(), poolpair.Pass(), atomicfield.Pass(), ctxflow.Pass()} {
		if err := a.Register(p); err != nil {
			fmt.Fprintf(os.Stderr, "invariantcheck: %v\n", err)
			os.Exit(2)
		}
	}
	if *list {
		for _, p := range a.Passes() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "invariantcheck: %v\n", err)
		os.Exit(2)
	}
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invariantcheck: %v\n", err)
		os.Exit(2)
	}
	findings := a.Run(units)
	for _, f := range findings {
		rel, err := filepath.Rel(loader.ModuleRoot, f.Pos.Filename)
		if err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "invariantcheck: %d finding(s) in %d package(s)\n", len(findings), len(units))
		os.Exit(1)
	}
	fmt.Printf("invariantcheck: %d package(s) clean under %d passes\n", len(units), len(a.Passes()))
}
