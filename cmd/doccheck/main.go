// Command doccheck is the documentation lint CI runs: it fails when any
// Go package under the given root directories lacks a godoc package
// comment. Go's own tooling treats the package comment as the package's
// one-paragraph contract (it heads the package's godoc page), so this
// check keeps every package self-describing as the codebase grows —
// docs/ARCHITECTURE.md gives the map, the package comments give the
// per-package detail.
//
// Analyzer passes carry an extra obligation: every package under
// internal/analysis/passes must state, in its package comment, the
// invariant it enforces ("... is the invariant pass enforcing ...") —
// a pass whose rule is undocumented cannot be reviewed against the
// code it polices, nor sensibly suppressed with //lint:escape.
//
// Usage:
//
//	doccheck [root ...]   (default: ./internal ./cmd ./examples)
//
// A package passes when at least one of its non-test .go files carries a
// doc comment immediately above its package clause. Test-only and
// testdata directories are skipped (testdata holds analyzer fixtures,
// not real packages). Exit status 1 lists every violation.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// passDirPrefix marks the analyzer-pass packages that must document
// their invariant, and passDocMarker is the phrase their package
// comments must carry.
const (
	passDirPrefix = "internal/analysis/passes/"
	passDocMarker = "invariant pass"
)

// checkDir reports whether the directory holds non-test Go files and,
// if so, the first package doc comment found among them ("" when none
// documents the package).
func checkDir(dir string) (hasGo bool, doc string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, "", err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		// PackageClauseOnly stops after the package line; the doc comment
		// precedes it, so this stays cheap on large files.
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return hasGo, "", err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, f.Doc.Text(), nil
		}
	}
	return hasGo, "", nil
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd", "./examples"}
	}
	var violations []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			hasGo, doc, err := checkDir(path)
			if err != nil {
				return err
			}
			if !hasGo {
				return nil
			}
			if doc == "" {
				violations = append(violations, path+": no godoc package comment")
				return nil
			}
			rel := filepath.ToSlash(strings.TrimPrefix(path, "./"))
			if strings.HasPrefix(rel, passDirPrefix) && !strings.Contains(doc, passDocMarker) {
				violations = append(violations, path+": analyzer pass comment must state the invariant it enforces (\""+passDocMarker+" ...\")")
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		fmt.Fprintln(os.Stderr, "doccheck: package documentation violations:")
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: every package has a package comment")
}
