// Command doccheck is the documentation lint CI runs: it fails when any
// Go package under the given root directories lacks a godoc package
// comment. Go's own tooling treats the package comment as the package's
// one-paragraph contract (it heads the package's godoc page), so this
// check keeps every package self-describing as the codebase grows —
// docs/ARCHITECTURE.md gives the map, the package comments give the
// per-package detail.
//
// Usage:
//
//	doccheck [root ...]   (default: ./internal ./cmd ./examples)
//
// A package passes when at least one of its non-test .go files carries a
// doc comment immediately above its package clause. Test-only directories
// are skipped. Exit status 1 lists every undocumented package.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkDir reports whether the directory holds non-test Go files and, if
// so, whether any of them documents the package.
func checkDir(dir string) (hasGo, documented bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		// PackageClauseOnly stops after the package line; the doc comment
		// precedes it, so this stays cheap on large files.
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return hasGo, false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return hasGo, false, nil
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd", "./examples"}
	}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			hasGo, documented, err := checkDir(path)
			if err != nil {
				return err
			}
			if hasGo && !documented {
				missing = append(missing, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(os.Stderr, "doccheck: packages without a godoc package comment:")
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: every package has a package comment")
}
