package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchio"
)

func healthyRows() []benchio.Row {
	return []benchio.Row{
		{Name: "Scenario_steady", QPS: 95, OfferedQPS: 100, P50Ms: 2, P95Ms: 6, P99Ms: 10, ErrorRate: 0},
		{Name: "Scenario_steady/model=rm1", Model: "rm1", QPS: 95, P50Ms: 2, P99Ms: 10},
	}
}

func TestCompareRowsPassesWithinThresholds(t *testing.T) {
	cur := healthyRows()
	cur[0].P99Ms = 35 // 3.5x, inside the 4x default
	compared, regs := compareRows("steady", healthyRows(), cur, thresholds{latencyRatio: 4, errorIncrease: 0.01})
	if compared == 0 || len(regs) != 0 {
		t.Fatalf("compared=%d regs=%v", compared, regs)
	}
}

func TestCompareRowsFlagsLatencyRegression(t *testing.T) {
	cur := healthyRows()
	cur[0].P99Ms = 50 // 5x baseline
	_, regs := compareRows("steady", healthyRows(), cur, thresholds{latencyRatio: 4, errorIncrease: 0.01})
	if len(regs) != 1 || regs[0].metric != "p99_ms" {
		t.Fatalf("regs = %v, want the p99 regression flagged", regs)
	}
}

func TestCompareRowsFlagsErrorRateRegression(t *testing.T) {
	cur := healthyRows()
	cur[0].ErrorRate = 0.05 // fault injection started leaking failures
	_, regs := compareRows("steady", healthyRows(), cur, thresholds{latencyRatio: 4, errorIncrease: 0.01})
	if len(regs) != 1 || regs[0].metric != "error_rate" {
		t.Fatalf("regs = %v, want the error-rate regression flagged", regs)
	}
}

func TestCompareRowsSkipsNewRowsAndZeroBaselines(t *testing.T) {
	base := []benchio.Row{{Name: "Scenario_steady", P50Ms: 0, P99Ms: 0, ErrorRate: 0}}
	cur := []benchio.Row{
		{Name: "Scenario_steady", P50Ms: 100, P99Ms: 100},     // zero-latency baseline: only error-rate judged
		{Name: "Scenario_steady/phase=new", P99Ms: 1_000_000}, // not in baseline
	}
	compared, regs := compareRows("steady", base, cur, thresholds{latencyRatio: 4, errorIncrease: 0.01})
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("compared=%d regs=%v, want only the error-rate judged", compared, regs)
	}
}

// TestCompareRowsGatesAutoscaleCounters checks the Extra counter gates: a
// baseline that scaled out sets a replicas_added floor, extra swaps over
// baseline flag an unexpected repartition, and rows missing a counter on
// either side are never judged on it.
func TestCompareRowsGatesAutoscaleCounters(t *testing.T) {
	th := thresholds{latencyRatio: 4, errorIncrease: 0.01}
	mk := func(added, swaps float64) []benchio.Row {
		return []benchio.Row{{
			Name: "Scenario_hot/model=hot", P50Ms: 2, P99Ms: 10,
			Extra: map[string]float64{"replicas_added": added, "swaps": swaps},
		}}
	}

	// Autoscaler stopped firing against a baseline that scaled out.
	_, regs := compareRows("hot", mk(2, 0), mk(0, 0), th)
	if len(regs) != 1 || regs[0].metric != "replicas_added" {
		t.Fatalf("regs = %v, want the replicas_added floor flagged", regs)
	}

	// Unexpected repartition: swaps above baseline.
	_, regs = compareRows("hot", mk(2, 1), mk(2, 2), th)
	if len(regs) != 1 || regs[0].metric != "swaps" {
		t.Fatalf("regs = %v, want the swaps ceiling flagged", regs)
	}

	// Matching counters pass, and the counter pairs count as compared.
	compared, regs := compareRows("hot", mk(2, 1), mk(3, 1), th)
	if len(regs) != 0 || compared != 5 { // p50 + p99 + error_rate + 2 counters
		t.Fatalf("compared=%d regs=%v, want 5 metrics judged and no regressions", compared, regs)
	}

	// A baseline without the counters never judges them retroactively.
	old := []benchio.Row{{Name: "Scenario_hot/model=hot", P50Ms: 2, P99Ms: 10}}
	compared, regs = compareRows("hot", old, mk(0, 99), th)
	if len(regs) != 0 || compared != 3 {
		t.Fatalf("compared=%d regs=%v, want counters skipped when baseline lacks them", compared, regs)
	}
}

// TestPhaseReportsJudgePerPhase checks the per-phase guard rows: each
// "/phase=" row shared with the baseline gets its own verdict, a phase
// whose p95 or error-rate blew past the thresholds is marked regressed,
// and phases new in the current run are skipped.
func TestPhaseReportsJudgePerPhase(t *testing.T) {
	base := []benchio.Row{
		{Name: "Scenario_s", P95Ms: 6},
		{Name: "Scenario_s/phase=warm", P95Ms: 4, ErrorRate: 0},
		{Name: "Scenario_s/phase=faults", P95Ms: 8, ErrorRate: 0},
	}
	cur := []benchio.Row{
		{Name: "Scenario_s", P95Ms: 6},
		{Name: "Scenario_s/phase=warm", P95Ms: 5, ErrorRate: 0},
		{Name: "Scenario_s/phase=faults", P95Ms: 8, ErrorRate: 0.2}, // leaking failures
		{Name: "Scenario_s/phase=new", P95Ms: 1000},                 // no baseline
	}
	reports := phaseReports("s", base, cur, thresholds{latencyRatio: 4, errorIncrease: 0.01})
	if len(reports) != 2 {
		t.Fatalf("reports = %v, want the two shared phases", reports)
	}
	if reports[0].phase != "warm" || !reports[0].ok {
		t.Fatalf("warm phase = %+v, want ok", reports[0])
	}
	if reports[1].phase != "faults" || reports[1].ok {
		t.Fatalf("faults phase = %+v, want regressed on error-rate", reports[1])
	}
	if r := reports[0].p95Ratio; r < 1.24 || r > 1.26 {
		t.Fatalf("warm p95 ratio = %v, want 1.25", r)
	}
}

// TestRunFailsOnDegradedArtifact is the end-to-end acceptance check: an
// artificially degraded run against a healthy checked-in baseline must
// exit non-zero.
func TestRunFailsOnDegradedArtifact(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	write := func(dir string, rows []benchio.Row) {
		t.Helper()
		if err := benchio.WriteRows(filepath.Join(dir, "BENCH_scenario_steady.json"), rows); err != nil {
			t.Fatal(err)
		}
	}
	write(baseDir, healthyRows())

	degraded := healthyRows()
	degraded[0].P50Ms, degraded[0].P99Ms, degraded[0].ErrorRate = 40, 200, 0.2
	write(curDir, degraded)
	th := thresholds{latencyRatio: 4, errorIncrease: 0.01}
	if code := run(baseDir, curDir, "", th); code != 1 {
		t.Fatalf("degraded run: exit %d, want 1", code)
	}

	// The same baseline against itself passes.
	write(curDir, healthyRows())
	if code := run(baseDir, curDir, "", th); code != 0 {
		t.Fatalf("healthy run: exit %d, want 0", code)
	}
}

func TestRunExitsUsageOnNoOverlap(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	if err := benchio.WriteRows(filepath.Join(baseDir, "BENCH_scenario_a.json"), healthyRows()); err != nil {
		t.Fatal(err)
	}
	if err := benchio.WriteRows(filepath.Join(curDir, "BENCH_scenario_b.json"), healthyRows()); err != nil {
		t.Fatal(err)
	}
	if code := run(baseDir, curDir, "", thresholds{latencyRatio: 4, errorIncrease: 0.01}); code != 2 {
		t.Fatalf("no overlap: exit %d, want 2", code)
	}
}

func TestRunRejectsMalformedArtifact(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	if err := benchio.WriteRows(filepath.Join(baseDir, "BENCH_scenario_a.json"), healthyRows()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(curDir, "BENCH_scenario_a.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(baseDir, curDir, "", thresholds{latencyRatio: 4, errorIncrease: 0.01}); code != 2 {
		t.Fatalf("malformed artifact: exit %d, want 2", code)
	}
}
