// Command scenarioguard diffs a directory of freshly measured scenario
// artifacts (BENCH_scenario_*.json, see internal/scenario) against their
// checked-in baselines and fails on latency or error-rate regressions, the
// run-over-run gate the CI scenario-matrix job enforces. Latency is judged
// as a ratio against the baseline row (p50, p95 and p99 separately) with a
// deliberately generous default threshold — CI runners vary — while
// error-rate is judged as an absolute increase, which is
// hardware-independent: a scenario whose fault injection starts leaking
// failed requests trips the guard no matter how fast the machine is.
//
// Every scenario phase present in both artifacts additionally gets its own
// guard row on stdout ("phase=<name>: p95 ...x of baseline, error-rate
// ... -> ..."), so a regression confined to one phase — say, the
// fault-injection window of an otherwise healthy run — is visible in the
// CI log by phase name, not just as a whole-scenario aggregate.
//
// Usage:
//
//	scenarioguard -baseline-dir examples/scenarios/baselines -current-dir . \
//	    [-max-latency-ratio 4.0] [-max-error-increase 0.01]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/benchio"
)

// regression is one row metric that got worse past its threshold.
type regression struct {
	artifact, row, metric string
	baseline, actual      float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s %s regressed %.3f -> %.3f", r.artifact, r.row, r.metric, r.baseline, r.actual)
}

// thresholds configures the per-metric gates.
type thresholds struct {
	// latencyRatio is the allowed p50/p99 multiple of baseline (4.0 =
	// current may be up to 4x the baseline quantile).
	latencyRatio float64
	// errorIncrease is the allowed absolute error-rate increase over
	// baseline (0.01 = one extra failed request per hundred).
	errorIncrease float64
}

// compareRows diffs one artifact's rows against its baseline rows. Rows
// missing from either side are skipped (new rows must not fail
// retroactively); compared counts row/metric pairs actually judged.
func compareRows(artifact string, baseline, current []benchio.Row, th thresholds) (compared int, regs []regression) {
	base := benchio.ByName(baseline)
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		for _, m := range []struct {
			metric       string
			base, actual float64
		}{
			{"p50_ms", b.P50Ms, cur.P50Ms},
			{"p95_ms", b.P95Ms, cur.P95Ms},
			{"p99_ms", b.P99Ms, cur.P99Ms},
		} {
			if m.base <= 0 {
				continue // no baseline signal for this quantile
			}
			compared++
			if m.actual > m.base*th.latencyRatio {
				regs = append(regs, regression{artifact: artifact, row: cur.Name,
					metric: m.metric, baseline: m.base, actual: m.actual})
			}
		}
		compared++
		if cur.ErrorRate > b.ErrorRate+th.errorIncrease {
			regs = append(regs, regression{artifact: artifact, row: cur.Name,
				metric: "error_rate", baseline: b.ErrorRate, actual: cur.ErrorRate})
		}
		// Counter gates, judged only when both sides carry the key (so
		// rows from before a counter existed never fail retroactively).
		// Both are deterministic, not hardware-dependent: autoscaler runs
		// must keep scaling out (a baseline that added replicas sets the
		// floor), and swaps only come from timeline events, so extra
		// swaps mean an unexpected repartition.
		if bv, cv, ok := extraPair(b, cur, "replicas_added"); ok {
			compared++
			if bv >= 1 && cv < 1 {
				regs = append(regs, regression{artifact: artifact, row: cur.Name,
					metric: "replicas_added", baseline: bv, actual: cv})
			}
		}
		if bv, cv, ok := extraPair(b, cur, "swaps"); ok {
			compared++
			if cv > bv {
				regs = append(regs, regression{artifact: artifact, row: cur.Name,
					metric: "swaps", baseline: bv, actual: cv})
			}
		}
		// Hot-row cache hit-rate floor: when both runs carried a live
		// cache and the baseline actually hit (>= 5%), the current run
		// must keep at least half the baseline's hit rate — a collapse
		// means the cache stopped being consulted or seeded, which is a
		// code regression, not runner noise.
		if bv, cv, ok := extraPair(b, cur, "rowcache_hit_rate"); ok && bv >= 0.05 {
			compared++
			if cv < bv*0.5 {
				regs = append(regs, regression{artifact: artifact, row: cur.Name,
					metric: "rowcache_hit_rate", baseline: bv, actual: cv})
			}
		}
	}
	return compared, regs
}

// extraPair returns a named Extra counter from both rows; ok only when the
// key is present on both sides.
func extraPair(b, cur benchio.Row, key string) (bv, cv float64, ok bool) {
	bv, bok := b.Extra[key]
	cv, cok := cur.Extra[key]
	return bv, cv, bok && cok
}

// phaseReport is one per-phase guard row: a scenario phase's p95 and
// error-rate judged against its baseline phase row.
type phaseReport struct {
	artifact, phase    string
	p95Ratio           float64 // current p95 as a multiple of baseline (0 = no baseline signal)
	errBase, errActual float64
	ok                 bool
}

func (p phaseReport) String() string {
	verdict := "ok"
	if !p.ok {
		verdict = "REGRESSED"
	}
	p95 := "p95 n/a"
	if p.p95Ratio > 0 {
		p95 = fmt.Sprintf("p95 %.2fx of baseline", p.p95Ratio)
	}
	return fmt.Sprintf("%s phase=%s: %s, error-rate %.3f -> %.3f [%s]",
		p.artifact, p.phase, p95, p.errBase, p.errActual, verdict)
}

// phaseReports builds the per-phase guard rows for one artifact: every
// "/phase=" row present in both current and baseline gets an explicit
// verdict against the same thresholds compareRows gates on.
func phaseReports(artifact string, baseline, current []benchio.Row, th thresholds) []phaseReport {
	base := benchio.ByName(baseline)
	var out []phaseReport
	for _, cur := range current {
		_, phase, ok := strings.Cut(cur.Name, "/phase=")
		if !ok {
			continue
		}
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		p := phaseReport{artifact: artifact, phase: phase, errBase: b.ErrorRate, errActual: cur.ErrorRate, ok: true}
		if b.P95Ms > 0 {
			p.p95Ratio = cur.P95Ms / b.P95Ms
			if p.p95Ratio > th.latencyRatio {
				p.ok = false
			}
		}
		if cur.ErrorRate > b.ErrorRate+th.errorIncrease {
			p.ok = false
		}
		out = append(out, p)
	}
	return out
}

// scenarioArtifacts lists the BENCH_scenario_*.json files in dir by base
// name.
func scenarioArtifacts(dir string) (map[string]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_scenario_*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(matches))
	for _, m := range matches {
		out[filepath.Base(m)] = m
	}
	return out, nil
}

// run executes the guard and returns its exit code (0 pass, 1 regression,
// 2 usage/overlap error), printing to stdout/stderr.
func run(baselineDir, currentDir, filter string, th thresholds) int {
	baselines, err := scenarioArtifacts(baselineDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarioguard: %v\n", err)
		return 2
	}
	currents, err := scenarioArtifacts(currentDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarioguard: %v\n", err)
		return 2
	}
	names := make([]string, 0, len(baselines))
	for name := range baselines {
		if _, ok := currents[name]; ok && benchio.MatchesAny(name, filter) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "scenarioguard: no scenario artifacts in common between %s and %s\n",
			baselineDir, currentDir)
		return 2
	}
	var (
		compared int
		regs     []regression
	)
	for _, name := range names {
		base, err := benchio.LoadRows(baselines[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarioguard: %v\n", err)
			return 2
		}
		cur, err := benchio.LoadRows(currents[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarioguard: %v\n", err)
			return 2
		}
		artifact := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_scenario_"), ".json")
		c, r := compareRows(artifact, base, cur, th)
		compared += c
		regs = append(regs, r...)
		for _, p := range phaseReports(artifact, base, cur, th) {
			fmt.Printf("scenarioguard: %s\n", p)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "scenarioguard: artifacts overlap but no comparable metrics (empty baselines?)")
		return 2
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "scenarioguard: %s\n", r)
		}
		return 1
	}
	fmt.Printf("scenarioguard: %d scenarios, %d metrics within thresholds (latency <= %.1fx, error-rate <= +%.3f)\n",
		len(names), compared, th.latencyRatio, th.errorIncrease)
	return 0
}

func main() {
	baselineDir := flag.String("baseline-dir", "examples/scenarios/baselines", "directory of checked-in BENCH_scenario_*.json baselines")
	currentDir := flag.String("current-dir", ".", "directory of freshly measured BENCH_scenario_*.json artifacts")
	filter := flag.String("filter", "", "only guard artifact names containing one of these comma-separated substrings")
	latencyRatio := flag.Float64("max-latency-ratio", 4.0, "allowed p50/p99 multiple of the baseline quantile")
	errorIncrease := flag.Float64("max-error-increase", 0.01, "allowed absolute error-rate increase over baseline")
	flag.Parse()
	os.Exit(run(*baselineDir, *currentDir, *filter,
		thresholds{latencyRatio: *latencyRatio, errorIncrease: *errorIncrease}))
}
