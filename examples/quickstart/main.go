// Quickstart: the end-to-end ElasticRec flow in one file.
//
//  1. Instantiate a (scaled-down) DLRM and profile its table accesses.
//  2. Run the utility-based DP partitioner (Algorithms 1 & 2) over the
//     access CDF to pick shard boundaries.
//  3. Preprocess (hotness-sort) the tables, spin the shards up as
//     in-process microservices, and serve queries through the dense shard.
//  4. Check the sharded predictions against the monolithic baseline.
//  5. Drift the traffic hotness, re-profile through the live window, and
//     swap the partition plan with zero downtime (Repartition).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/serving"
	"repro/internal/workload"
)

func main() {
	// A scaled-down RM1: 100k-row tables fit comfortably in memory while
	// keeping the architecture (Table II) intact.
	cfg := model.RM1().WithRows(100_000).WithName("rm1-quickstart")
	m, err := model.New(cfg, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d tables x %d rows (%s embeddings, %s dense)\n",
		cfg.Name, cfg.NumTables, cfg.RowsPerTable,
		metrics.FormatBytes(cfg.SparseBytes()), metrics.FormatBytes(cfg.DenseBytes()))

	// Profile table accesses with power-law traffic (locality P = 90%).
	// The sampler is wrapped in a drifting shim so step 5 can migrate the
	// hot set mid-run without touching the distribution's shape.
	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	drift, err := workload.NewDriftingSampler(sampler)
	if err != nil {
		log.Fatal(err)
	}
	mapping := workload.NewShuffledMapping(cfg.RowsPerTable, 7)
	gen, err := workload.NewQueryGenerator(drift, mapping, cfg.BatchSize, cfg.Pooling, 11)
	if err != nil {
		log.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 200; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled locality: table 0 P = %.0f%% (target %.0f%%)\n",
		100*stats[0].LocalityP(), 100*cfg.LocalityP)

	// Partition with the paper's DP over the profiled CDF. The table is
	// scaled down ~200x from the paper's 20M rows, so scale the
	// per-container minimum memory down too — otherwise the fixed
	// overhead correctly dominates and the DP keeps one shard.
	profile := perfmodel.CPUOnlyProfile()
	profile.MinMemAlloc = 2 << 20
	planner := &deploy.Planner{
		Profile: profile,
		CDF:     embedding.NewCDF(stats[0]),
	}
	plan, cm, err := planner.PartitionTable(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DP chose %d shards/table, boundaries %v\n", plan.NumShards(), plan.Boundaries)
	ests, err := cm.Evaluate(plan)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range ests {
		fmt.Printf("  shard %d: rows [%d, %d) ns=%.1f est. QPS=%.0f replicas=%.1f\n",
			i+1, e.Lo, e.Hi, e.NS, e.QPS, e.Replicas)
	}

	// Build the live microservice deployment — fronted by the dynamic
	// batcher, which coalesces concurrent Predict calls into fused dense
	// forward batches — and a monolithic baseline.
	ld, err := serving.BuildElastic(m, stats, plan.Boundaries, serving.BuildOptions{
		Batching: &serving.BatcherOptions{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ld.Close()
	mono := serving.NewMonolith(m.Clone())

	// Serve queries through both paths and compare.
	rng := workload.NewRNG(1)
	maxDiff := 0.0
	const queries = 50
	for q := 0; q < queries; q++ {
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for i := range req.Dense {
			req.Dense[i] = float32(rng.Float64()*2 - 1)
		}
		for t := 0; t < cfg.NumTables; t++ {
			b := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		var sharded, monolithic serving.PredictReply
		if err := ld.Predict(context.Background(), req, &sharded); err != nil {
			log.Fatal(err)
		}
		if err := mono.Predict(context.Background(), req, &monolithic); err != nil {
			log.Fatal(err)
		}
		for i := range sharded.Probs {
			d := math.Abs(float64(sharded.Probs[i] - monolithic.Probs[i]))
			if d > maxDiff {
				maxDiff = d
			}
		}
		if q == 0 {
			fmt.Printf("first query probabilities (sharded): %.4f...\n", sharded.Probs[:4])
		}
	}
	fmt.Printf("served %d queries; max |sharded - monolithic| = %.2g\n", queries, maxDiff)

	// Per-shard memory utility mirrors Fig. 14: hot shards are used.
	for s := 0; s < plan.NumShards(); s++ {
		fmt.Printf("shard %d memory utility: %.1f%%\n", s+1, 100*ld.ShardUtility(0, s))
	}

	// A concurrent burst: 8 closed-loop clients hammer the frontend and
	// the batcher fuses their overlapping requests into shared forward
	// batches (the serving layer's dense hot path has no global lock).
	const clients, perClient = 8, 25
	burst := make([]*serving.PredictRequest, clients)
	for c := range burst {
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for t := 0; t < cfg.NumTables; t++ {
			b := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		burst[c] = req
	}
	before := ld.Batcher.Batches.Value()
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				var reply serving.PredictReply
				if err := ld.Predict(context.Background(), burst[c], &reply); err != nil {
					log.Printf("burst predict: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	fused := ld.Batcher.Batches.Value() - before
	burstMean := float64(clients*perClient*cfg.BatchSize) / float64(fused)
	fmt.Printf("burst: %d clients x %d queries in %v — %d requests fused into %d batches (mean %.1f inputs)\n",
		clients, perClient, elapsed.Round(time.Millisecond),
		clients*perClient, fused, burstMean)
	fmt.Printf("batch-size histogram: %s\n", ld.Batcher.BatchSizes)

	// Live repartitioning: the hot set migrates halfway across the table
	// (user-interest drift), the live profiling window catches the new
	// distribution, the DP re-plans over the fresh CDF, and Repartition
	// swaps the plan epoch while the deployment keeps serving.
	drift.SetShift(int64(cfg.RowsPerTable / 2))
	ld.StartProfile()
	serveOne := func() {
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for t := 0; t < cfg.NumTables; t++ {
			b := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		var reply serving.PredictReply
		if err := ld.Predict(context.Background(), req, &reply); err != nil {
			log.Fatal(err)
		}
	}
	for q := 0; q < 200; q++ {
		serveOne()
	}
	fmt.Printf("hotness drifted: epoch %d utility skew flattened to %.2f\n",
		ld.Epoch(), ld.Table().UtilitySkew())

	window := ld.SnapshotProfile()
	replanner := &deploy.Planner{Profile: profile, CDF: embedding.NewCDF(window[0])}
	newPlan, _, err := replanner.PartitionTable(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ld.Repartition(context.Background(), window, newPlan.Boundaries); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repartitioned live: epoch %d, boundaries %v (%d swap)\n",
		ld.Epoch(), ld.Boundaries(), ld.Router.Swaps.Value())
	for q := 0; q < 200; q++ {
		serveOne()
	}
	fmt.Printf("fresh epoch utility skew re-concentrated to %.2f\n", ld.Table().UtilitySkew())
	for s := 0; s < len(ld.Boundaries()); s++ {
		fmt.Printf("  epoch %d shard %d memory utility: %.1f%%\n",
			ld.Epoch(), s+1, 100*ld.ShardUtility(0, s))
	}
}
