// Liveserving: real microservices on loopback TCP with a live autoscaler
// and autonomous zero-downtime repartitioning.
//
// Every embedding shard runs behind its own net/rpc server (the stand-in
// for the paper's gRPC mesh); a round-robin replica pool plays Linkerd; an
// HPA-style control loop watches the offered load and scales shard
// replicas in and out while a Poisson client drives stepped traffic.
// Mid-run the traffic hotness drifts; the control loop notices the
// flattened per-shard utility profile (Fig. 14), re-plans from the live
// profiling window and swaps the partition epoch while requests keep
// flowing — the closed profiling -> repartition -> serve loop of
// Sec. IV-B.
//
// Run with: go run ./examples/liveserving [-duration 12s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

func main() {
	duration := flag.Duration("duration", 12*time.Second, "how long to drive traffic")
	flag.Parse()

	cfg := model.RM1().WithRows(20_000).WithName("rm1-live")
	cfg.NumTables = 4 // keep the socket count friendly
	m, err := model.New(cfg, 77)
	if err != nil {
		log.Fatal(err)
	}

	// Profile, then build a 3-shard deployment over loopback TCP. The
	// sampler is wrapped in a drifting shim so the hot set can migrate
	// mid-run.
	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	drift, err := workload.NewDriftingSampler(sampler)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, 5)
	if err != nil {
		log.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 100; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		log.Fatal(err)
	}
	boundaries := []int64{2_000, 8_000, cfg.RowsPerTable}
	ld, err := serving.BuildElastic(m, stats, boundaries, serving.BuildOptions{
		Transport: serving.TransportTCP,
		Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfg.BatchSize, MaxDelay: 500 * time.Microsecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ld.Close()
	fmt.Printf("deployed %d embedding shards x %d tables over TCP microservices\n",
		len(boundaries), cfg.NumTables)

	// Export the batched predict frontend itself over net/rpc and drive
	// all traffic through the wire, like a real client would.
	addr, err := ld.ExportPredict("Frontend")
	if err != nil {
		log.Fatal(err)
	}
	frontend, err := serving.DialPredict(addr, "Frontend")
	if err != nil {
		log.Fatal(err)
	}
	defer frontend.Close()
	fmt.Printf("predict frontend (dynamic batching) exported at %s\n", addr)

	// Live autoscaler: every shard of the current epoch scales on the
	// offered QPS, with the hotter shards given lower per-replica QPSmax
	// thresholds. buildScaled is re-run after every epoch swap so the
	// control loop always scales the epoch that is actually serving.
	var mu sync.Mutex
	currentQPS := 0.0
	buildScaled := func() []*serving.AutoscaledShard {
		rt := ld.Table()
		scaled := []*serving.AutoscaledShard{}
		for t := 0; t < cfg.NumTables; t++ {
			for s := 0; s < rt.NumShards(t); s++ {
				t, s := t, s
				lo := int64(0)
				if s > 0 {
					lo = rt.Boundaries[t][s-1]
				}
				hi := rt.Boundaries[t][s]
				sorted := rt.Pre.Sorted[t]
				scaled = append(scaled, &serving.AutoscaledShard{
					Name:   fmt.Sprintf("e%d-t%d-s%d", rt.Epoch, t, s),
					Pool:   rt.Pools[t][s],
					QPSMax: 20 * float64(s+1), // hotter shards saturate sooner
					Spawn: func() (serving.GatherClient, error) {
						return serving.NewEmbeddingShard(t, s, sorted, lo, hi)
					},
					MaxReplicas: 6,
				})
			}
		}
		return scaled
	}
	as := &serving.LiveAutoscaler{
		Shards:   buildScaled(),
		Interval: 500 * time.Millisecond,
		OfferedQPS: func(string) float64 {
			mu.Lock()
			defer mu.Unlock()
			return currentQPS
		},
		Deployment: ld,
		RepartitionPolicy: &cluster.RepartitionPolicy{
			MinSkew: 0.35,
			// Dense dispatches, not client requests: the batcher fuses
			// ~3 requests per forward batch at this MaxBatch, so 40
			// dispatches ≈ 120 client requests of warm-up.
			MinRequests: 40,
			MinInterval: *duration, // at most one swap per run
		},
		Replan: func(window []*embedding.AccessStats) ([]int64, error) {
			// Re-plan proportionally to the freshly profiled CDF: cut at
			// 70% and 95% access coverage, mirroring what the DP chooses
			// for this geometry without re-fitting the cost model inline.
			cdf := embedding.NewCDF(window[0])
			cuts := []int64{}
			for _, p := range []float64{0.70, 0.95} {
				var j int64
				for j = 1; j < cdf.Rows() && cdf.At(j) < p; j++ {
				}
				cuts = append(cuts, j)
			}
			return append(cuts, cfg.RowsPerTable), nil
		},
	}
	// After a swap, point the replica-scaling loop at the new epoch's
	// pools (the autoscaler reopens the profiling window itself). The
	// callback runs on the control-loop goroutine, which is the only
	// reader of as.Shards.
	as.OnRepartition = func(retired int64, err error) {
		if err != nil {
			log.Printf("repartition failed: %v", err)
			return
		}
		as.Shards = buildScaled()
		fmt.Printf("-> repartitioned live: retired epoch %d, serving epoch %d with boundaries %v\n",
			retired, ld.Epoch(), ld.Boundaries())
	}
	ld.StartProfile()
	as.Start()
	defer as.Stop()

	// Drive stepped Poisson traffic: low -> high -> low; the hot set
	// drifts halfway across the table a third of the way in.
	pattern, err := workload.NewTrafficPattern([]workload.TrafficPhase{
		{Start: 0, TargetQPS: 10},
		{Start: *duration / 3, TargetQPS: 60},
		{Start: 2 * *duration / 3, TargetQPS: 15},
	}, *duration)
	if err != nil {
		log.Fatal(err)
	}
	arrivals := workload.NewPoissonArrivals(pattern, 9)
	start := time.Now()
	var wg sync.WaitGroup
	served := 0
	drifted := false
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		time.Sleep(time.Until(start.Add(at)))
		if !drifted && at > *duration/3 {
			drift.SetShift(int64(cfg.RowsPerTable / 2))
			drifted = true
			fmt.Printf("-> hotness drift injected at %v\n", at.Round(time.Millisecond))
		}
		mu.Lock()
		currentQPS = pattern.QPSAt(at)
		mu.Unlock()
		wg.Add(1)
		served++
		// Build the request on the arrival loop (the generator is not
		// concurrency-safe), then issue it from its own client goroutine.
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for t := 0; t < cfg.NumTables; t++ {
			b := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var reply serving.PredictReply
			if err := frontend.Predict(ctx, req, &reply); err != nil {
				log.Printf("predict: %v", err)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("served %d queries over %v (%d epoch swaps)\n",
		served, time.Since(start).Round(time.Millisecond), ld.Router.Swaps.Value())
	fmt.Printf("dense shard: P50=%v P95=%v\n",
		ld.Dense.Latency.Quantile(0.50).Round(time.Microsecond),
		ld.Dense.Latency.Quantile(0.95).Round(time.Microsecond))
	fmt.Printf("batcher: %d requests fused into %d batches (mean batch %.1f inputs)\n",
		ld.Batcher.Requests.Value(), ld.Batcher.Batches.Value(), ld.Batcher.BatchSizes.Mean())
	fmt.Printf("batcher batch-size histogram: %s\n", ld.Batcher.BatchSizes)
	fmt.Printf("batcher queue-depth histogram: %s\n", ld.Batcher.QueueDepth)
	rt := ld.Table()
	for s := 0; s < rt.NumShards(0); s++ {
		fmt.Printf("epoch %d table0 shard %d: replicas=%d utility=%.1f%% P95=%v\n",
			rt.Epoch, s+1, rt.Pools[0][s].Size(), 100*rt.Utility(0, s),
			rt.Shards[0][s].Latency.Quantile(0.95).Round(time.Microsecond))
	}
	for _, label := range ld.EpochUtility.Labels() {
		if v, ok := ld.EpochUtility.Value(label); ok {
			fmt.Printf("retired gauge %s = %.1f%%\n", label, 100*v)
		}
	}
}
