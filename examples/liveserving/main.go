// Liveserving: real microservices on loopback TCP serving TWO DLRM
// variants behind one frontend, with a live autoscaler and autonomous
// zero-downtime repartitioning per variant.
//
// Every embedding shard of both variants runs behind its own net/rpc
// server (the stand-in for the paper's gRPC mesh); a round-robin replica
// pool plays Linkerd; an HPA-style control loop watches the offered load
// and scales shard replicas in and out while a Poisson client drives
// stepped traffic addressed to both variants through a single exported
// predict endpoint (requests carry their model name on the wire).
//
// The variants' hot sets drift at different times: variant "hot" drifts a
// third of the way in, variant "slow" drifts at two thirds. The control
// loop watches each variant's per-shard utility profile (Fig. 14)
// independently, re-plans the stale one from its own live profiling
// window and swaps only that variant's partition epoch while requests for
// both keep flowing — the closed profiling -> repartition -> serve loop of
// Sec. IV-B, run per model on independent cadences.
//
// Run with: go run ./examples/liveserving [-duration 12s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// variant is one DLRM model's client-side state: its geometry, drifting
// sampler and query generator.
type variant struct {
	name    string
	cfg     model.Config
	drift   *workload.DriftingSampler
	gen     *workload.QueryGenerator
	driftAt time.Duration // when this variant's hot set migrates
	served  int
}

func newVariant(name string, cfg model.Config, seed uint64, driftAt time.Duration) *variant {
	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	drift, err := workload.NewDriftingSampler(sampler)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, seed)
	if err != nil {
		log.Fatal(err)
	}
	return &variant{name: name, cfg: cfg, drift: drift, gen: gen, driftAt: driftAt}
}

// window profiles the variant's current traffic for the initial plan.
func (v *variant) window(queries int) []*embedding.AccessStats {
	perTable := make([][]*embedding.Batch, v.cfg.NumTables)
	for t := range perTable {
		for q := 0; q < queries; q++ {
			perTable[t] = append(perTable[t], v.gen.Next())
		}
	}
	stats, err := serving.CollectStats(v.cfg, perTable)
	if err != nil {
		log.Fatal(err)
	}
	return stats
}

// request builds one predict request addressed to this variant.
func (v *variant) request() *serving.PredictRequest {
	req := &serving.PredictRequest{
		Model:     v.name,
		BatchSize: v.cfg.BatchSize,
		DenseDim:  v.cfg.DenseInputDim,
		Dense:     make([]float32, v.cfg.BatchSize*v.cfg.DenseInputDim),
	}
	for t := 0; t < v.cfg.NumTables; t++ {
		b := v.gen.Next()
		req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
	}
	return req
}

// proportionalReplan cuts the freshly profiled CDF at 70% and 95% access
// coverage, mirroring what the DP chooses for these geometries without
// re-fitting the cost model inline.
func proportionalReplan(rows int64) func([]*embedding.AccessStats) ([]int64, error) {
	return func(window []*embedding.AccessStats) ([]int64, error) {
		cdf := embedding.NewCDF(window[0])
		cuts := []int64{}
		for _, p := range []float64{0.70, 0.95} {
			var j int64
			for j = 1; j < cdf.Rows() && cdf.At(j) < p; j++ {
			}
			cuts = append(cuts, j)
		}
		return append(cuts, rows), nil
	}
}

func main() {
	duration := flag.Duration("duration", 12*time.Second, "how long to drive traffic")
	flag.Parse()

	cfgHot := model.RM1().WithRows(20_000).WithName("rm1-hot")
	cfgHot.NumTables = 3 // keep the socket count friendly
	cfgSlow := model.RM1().WithRows(12_000).WithName("rm1-slow")
	cfgSlow.NumTables = 2
	cfgSlow.BatchSize = 2

	hot := newVariant("hot", cfgHot, 5, *duration/4)
	slow := newVariant("slow", cfgSlow, 1005, 2**duration/3)
	variants := []*variant{hot, slow}

	mHot, err := model.New(cfgHot, 77)
	if err != nil {
		log.Fatal(err)
	}
	mSlow, err := model.New(cfgSlow, 1077)
	if err != nil {
		log.Fatal(err)
	}

	// Both variants behind ONE router and ONE frontend, each shard a TCP
	// microservice, each variant with its own dynamic batcher.
	md, err := serving.BuildMulti(
		serving.ModelSpec{
			Name: hot.name, Model: mHot, Stats: hot.window(100),
			Boundaries: []int64{2_000, 8_000, cfgHot.RowsPerTable},
			Options: serving.BuildOptions{
				Transport: serving.TransportTCP,
				Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfgHot.BatchSize, MaxDelay: 500 * time.Microsecond},
			},
		},
		serving.ModelSpec{
			Name: slow.name, Model: mSlow, Stats: slow.window(100),
			Boundaries: []int64{1_500, 5_000, cfgSlow.RowsPerTable},
			Options: serving.BuildOptions{
				Transport: serving.TransportTCP,
				Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfgSlow.BatchSize, MaxDelay: 500 * time.Microsecond},
			},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer md.Close()
	for _, v := range variants {
		ld, _ := md.Deployment(v.name)
		fmt.Printf("model %q: %d embedding shards x %d tables over TCP microservices\n",
			v.name, ld.Table().NumShards(0), v.cfg.NumTables)
	}

	// Export the multi-model dispatching frontend over net/rpc and drive
	// all traffic through the wire; the Model field routes each request.
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		log.Fatal(err)
	}
	frontend, err := serving.DialPredict(addr, "Frontend")
	if err != nil {
		log.Fatal(err)
	}
	defer frontend.Close()
	fmt.Printf("multi-model predict frontend (dynamic batching per model) exported at %s\n", addr)

	// Live autoscaler: every shard of every variant's current epoch scales
	// on its OWN variant's offered QPS — the per-model attribution split.
	// One meter per variant is marked as requests are issued, keyed by the
	// request's Model field, so a traffic spike on "hot" never scales
	// "slow"'s pools (and vice versa). buildScaled is re-run after every
	// epoch swap so the control loop always scales the epochs that are
	// actually serving.
	offered := map[string]*metrics.QPSMeter{}
	for _, v := range variants {
		offered[v.name] = metrics.NewQPSMeter(2 * time.Second)
	}
	buildScaled := func() []*serving.AutoscaledShard {
		scaled := []*serving.AutoscaledShard{}
		for _, v := range variants {
			ld, _ := md.Deployment(v.name)
			rt := ld.Table()
			for t := 0; t < v.cfg.NumTables; t++ {
				for s := 0; s < rt.NumShards(t); s++ {
					t, s := t, s
					lo := int64(0)
					if s > 0 {
						lo = rt.Boundaries[t][s-1]
					}
					hi := rt.Boundaries[t][s]
					sorted := rt.Pre.Sorted[t]
					scaled = append(scaled, &serving.AutoscaledShard{
						Name:   fmt.Sprintf("%s-e%d-t%d-s%d", v.name, rt.Epoch, t, s),
						Model:  v.name,
						Pool:   rt.Pools[t][s],
						QPSMax: 20 * float64(s+1), // hotter shards saturate sooner
						Spawn: func() (serving.GatherClient, error) {
							return serving.NewEmbeddingShard(t, s, sorted, lo, hi)
						},
						MaxReplicas: 6,
					})
				}
			}
		}
		return scaled
	}
	as := &serving.LiveAutoscaler{
		Shards:   buildScaled(),
		Interval: 500 * time.Millisecond,
		OfferedModelQPS: func(model string) float64 {
			if m, ok := offered[model]; ok {
				return m.Rate()
			}
			return 0
		},
	}
	// One repartition loop per variant, sharing one policy: firing state
	// is per model, so the variants profile and swap on independent
	// cadences — "hot" repartitioning mid-run never consumes "slow"'s
	// interval, and vice versa.
	policy := &cluster.RepartitionPolicy{
		MinSkew: 0.35,
		// Dense dispatches, not client requests: the batcher fuses ~3
		// requests per forward batch at this MaxBatch, so 25 dispatches ≈
		// 75 client requests of warm-up per variant.
		MinRequests: 25,
		MinInterval: *duration, // at most one swap per variant per run
	}
	for _, v := range variants {
		v := v
		ld, _ := md.Deployment(v.name)
		as.Repartitions = append(as.Repartitions, &serving.ModelRepartition{
			Model:      v.name,
			Deployment: ld,
			Policy:     policy,
			Replan:     proportionalReplan(v.cfg.RowsPerTable),
			// After a swap, point the replica-scaling loop at the new
			// epoch's pools (the autoscaler reopens the profiling window
			// itself). The callback runs on the control-loop goroutine,
			// which is the only reader of as.Shards.
			OnRepartition: func(name string, retired int64, err error) {
				if err != nil {
					log.Printf("repartition %s: %v", name, err)
					return
				}
				as.Shards = buildScaled()
				fmt.Printf("-> repartitioned %q live: retired epoch %d, serving epoch %d with boundaries %v (other variants untouched)\n",
					name, retired, md.Epoch(name), ld.Boundaries())
			},
		})
		ld.StartProfile()
	}
	as.Start()
	defer as.Stop()

	// Drive stepped Poisson traffic: low -> high -> low; each variant's
	// hot set drifts at its own time, and every third query addresses the
	// "slow" variant.
	pattern, err := workload.NewTrafficPattern([]workload.TrafficPhase{
		{Start: 0, TargetQPS: 10},
		{Start: *duration / 3, TargetQPS: 60},
		{Start: 2 * *duration / 3, TargetQPS: 15},
	}, *duration)
	if err != nil {
		log.Fatal(err)
	}
	arrivals := workload.NewPoissonArrivals(pattern, 9)
	start := time.Now()
	var wg sync.WaitGroup
	total := 0
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		time.Sleep(time.Until(start.Add(at)))
		for _, v := range variants {
			if v.driftAt > 0 && at > v.driftAt {
				v.drift.SetShift(v.cfg.RowsPerTable / 2)
				v.driftAt = 0
				fmt.Printf("-> hotness drift injected into %q at %v\n", v.name, at.Round(time.Millisecond))
			}
		}
		v := variants[0]
		if total%3 == 2 {
			v = variants[1]
		}
		total++
		v.served++
		offered[v.name].Mark()
		wg.Add(1)
		// Build the request on the arrival loop (the generators are not
		// concurrency-safe), then issue it from its own client goroutine.
		req := v.request()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var reply serving.PredictReply
			if err := frontend.Predict(ctx, req, &reply); err != nil {
				log.Printf("predict: %v", err)
			}
		}()
	}
	wg.Wait()
	// Stop the control loop before the summary so a last-tick swap lands
	// (Stop is idempotent; the deferred call becomes a no-op).
	as.Stop()

	fmt.Printf("served %d queries over %v (%d epoch swaps across %d models)\n",
		total, time.Since(start).Round(time.Millisecond), md.Router.Swaps.Value(), len(variants))
	for _, v := range variants {
		ld, _ := md.Deployment(v.name)
		rt := ld.Table()
		fmt.Printf("model %q: %d queries (%.1f offered qps at close), epoch %d (%d swaps), dense P50=%v P95=%v\n",
			v.name, v.served, offered[v.name].Rate(), rt.Epoch, md.Router.SwapsFor(v.name),
			ld.Dense.Latency.Quantile(0.50).Round(time.Microsecond),
			ld.Dense.Latency.Quantile(0.95).Round(time.Microsecond))
		fmt.Printf("model %q batcher: %d requests fused into %d batches (mean batch %.1f inputs)\n",
			v.name, ld.Batcher.Requests.Value(), ld.Batcher.Batches.Value(), ld.Batcher.BatchSizes.Mean())
		for s := 0; s < rt.NumShards(0); s++ {
			fmt.Printf("model %q epoch %d table0 shard %d: replicas=%d utility=%.1f%% P95=%v\n",
				v.name, rt.Epoch, s+1, rt.Pools[0][s].Size(), 100*rt.Utility(0, s),
				rt.Shards[0][s].Latency.Quantile(0.95).Round(time.Microsecond))
		}
		for _, label := range ld.EpochUtility.Labels() {
			if val, ok := ld.EpochUtility.Value(label); ok {
				fmt.Printf("model %q retired gauge %s = %.1f%%\n", v.name, label, 100*val)
			}
		}
	}
}
