// Liveserving: real microservices on loopback TCP with a live autoscaler.
//
// Every embedding shard runs behind its own net/rpc server (the stand-in
// for the paper's gRPC mesh); a round-robin replica pool plays Linkerd; an
// HPA-style control loop watches the offered load and scales shard
// replicas in and out while a Poisson client drives stepped traffic.
//
// Run with: go run ./examples/liveserving [-duration 12s]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

func main() {
	duration := flag.Duration("duration", 12*time.Second, "how long to drive traffic")
	flag.Parse()

	cfg := model.RM1().WithRows(20_000).WithName("rm1-live")
	cfg.NumTables = 4 // keep the socket count friendly
	m, err := model.New(cfg, 77)
	if err != nil {
		log.Fatal(err)
	}

	// Profile, then build a 3-shard deployment over loopback TCP.
	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(sampler, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, 5)
	if err != nil {
		log.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 100; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		log.Fatal(err)
	}
	boundaries := []int64{2_000, 8_000, cfg.RowsPerTable}
	ld, err := serving.BuildElastic(m, stats, boundaries, serving.BuildOptions{
		Transport: serving.TransportTCP,
		Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfg.BatchSize, MaxDelay: 500 * time.Microsecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ld.Close()
	fmt.Printf("deployed %d embedding shards x %d tables over TCP microservices\n",
		len(boundaries), cfg.NumTables)

	// Export the batched predict frontend itself over net/rpc and drive
	// all traffic through the wire, like a real client would.
	addr, err := ld.ExportPredict("Frontend")
	if err != nil {
		log.Fatal(err)
	}
	frontend, err := serving.DialPredict(addr, "Frontend")
	if err != nil {
		log.Fatal(err)
	}
	defer frontend.Close()
	fmt.Printf("predict frontend (dynamic batching) exported at %s\n", addr)

	// Live autoscaler: every shard scales on the offered QPS, with the
	// hotter shards given lower per-replica QPSmax thresholds.
	var mu sync.Mutex
	currentQPS := 0.0
	scaled := []*serving.AutoscaledShard{}
	for t := 0; t < cfg.NumTables; t++ {
		for s := 0; s < len(boundaries); s++ {
			t, s := t, s
			lo := int64(0)
			if s > 0 {
				lo = boundaries[s-1]
			}
			hi := boundaries[s]
			scaled = append(scaled, &serving.AutoscaledShard{
				Name:   fmt.Sprintf("t%d-s%d", t, s),
				Pool:   ld.Pools[t][s],
				QPSMax: 20 * float64(s+1), // hotter shards saturate sooner
				Spawn: func() (serving.GatherClient, error) {
					return serving.NewEmbeddingShard(t, s, ld.Pre.Sorted[t], lo, hi)
				},
				MaxReplicas: 6,
			})
		}
	}
	as := &serving.LiveAutoscaler{
		Shards:   scaled,
		Interval: 500 * time.Millisecond,
		OfferedQPS: func(string) float64 {
			mu.Lock()
			defer mu.Unlock()
			return currentQPS
		},
	}
	as.Start()
	defer as.Stop()

	// Drive stepped Poisson traffic: low -> high -> low.
	pattern, err := workload.NewTrafficPattern([]workload.TrafficPhase{
		{Start: 0, TargetQPS: 10},
		{Start: *duration / 3, TargetQPS: 60},
		{Start: 2 * *duration / 3, TargetQPS: 15},
	}, *duration)
	if err != nil {
		log.Fatal(err)
	}
	arrivals := workload.NewPoissonArrivals(pattern, 9)
	start := time.Now()
	var wg sync.WaitGroup
	served := 0
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		time.Sleep(time.Until(start.Add(at)))
		mu.Lock()
		currentQPS = pattern.QPSAt(at)
		mu.Unlock()
		wg.Add(1)
		served++
		// Build the request on the arrival loop (the generator is not
		// concurrency-safe), then issue it from its own client goroutine.
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for t := 0; t < cfg.NumTables; t++ {
			b := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		go func() {
			defer wg.Done()
			var reply serving.PredictReply
			if err := frontend.Predict(req, &reply); err != nil {
				log.Printf("predict: %v", err)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("served %d queries over %v\n", served, time.Since(start).Round(time.Millisecond))
	fmt.Printf("dense shard: P50=%v P95=%v\n",
		ld.Dense.Latency.Quantile(0.50).Round(time.Microsecond),
		ld.Dense.Latency.Quantile(0.95).Round(time.Microsecond))
	fmt.Printf("batcher: %d requests fused into %d batches (mean batch %.1f inputs)\n",
		ld.Batcher.Requests.Value(), ld.Batcher.Batches.Value(), ld.Batcher.BatchSizes.Mean())
	fmt.Printf("batcher batch-size histogram: %s\n", ld.Batcher.BatchSizes)
	fmt.Printf("batcher queue-depth histogram: %s\n", ld.Batcher.QueueDepth)
	for s := 0; s < len(boundaries); s++ {
		fmt.Printf("table0 shard %d: replicas=%d utility=%.1f%% P95=%v\n",
			s+1, ld.Pools[0][s].Size(), 100*ld.ShardUtility(0, s),
			ld.Shards[0][s].Latency.Quantile(0.95).Round(time.Microsecond))
	}
}
