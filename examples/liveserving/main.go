// Liveserving: real microservices on loopback TCP serving a CHANGING set
// of DLRM variants behind one frontend, with a live autoscaler, autonomous
// zero-downtime repartitioning per variant, and runtime model lifecycle
// driven over the admin API.
//
// Every embedding shard of every variant runs behind its own net/rpc
// server (the stand-in for the paper's gRPC mesh); a round-robin replica
// pool plays Linkerd; an HPA-style control loop watches each variant's own
// offered load and scales shard replicas in and out while a Poisson client
// drives stepped traffic through a single exported predict endpoint
// (requests carry their model name on the wire).
//
// The run starts with two variants ("hot", "slow") and the served set
// changes under fire: variant "burst" is DEPLOYED into the running
// frontend halfway through (build → warm → publish over the versioned
// admin RPC riding the same TCP listener — no restart), and variant "hot"
// is UNDEPLOYED at three quarters (drained, unregistered, its shard
// services fully released) while the others keep serving. The controller
// keeps the autoscaler in step: a deployed variant gets its repartition
// loop and scaling entries automatically, an undeployed one has them torn
// down. Hot sets still drift mid-run, so the closed profiling ->
// repartition -> serve loop of Sec. IV-B runs per model on independent
// cadences throughout.
//
// Run with: go run ./examples/liveserving [-duration 12s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// variant is one DLRM model's client-side state: its geometry, drifting
// sampler and query generator.
type variant struct {
	name    string
	cfg     model.Config
	drift   *workload.DriftingSampler
	gen     *workload.QueryGenerator
	driftAt time.Duration // when this variant's hot set migrates
	served  int
}

func newVariant(name string, cfg model.Config, seed uint64, driftAt time.Duration) *variant {
	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	drift, err := workload.NewDriftingSampler(sampler)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, seed)
	if err != nil {
		log.Fatal(err)
	}
	return &variant{name: name, cfg: cfg, drift: drift, gen: gen, driftAt: driftAt}
}

// window profiles the variant's current traffic for the initial plan.
func (v *variant) window(queries int) []*embedding.AccessStats {
	perTable := make([][]*embedding.Batch, v.cfg.NumTables)
	for t := range perTable {
		for q := 0; q < queries; q++ {
			perTable[t] = append(perTable[t], v.gen.Next())
		}
	}
	stats, err := serving.CollectStats(v.cfg, perTable)
	if err != nil {
		log.Fatal(err)
	}
	return stats
}

// request builds one predict request addressed to this variant.
func (v *variant) request() *serving.PredictRequest {
	req := &serving.PredictRequest{
		Model:     v.name,
		BatchSize: v.cfg.BatchSize,
		DenseDim:  v.cfg.DenseInputDim,
		Dense:     make([]float32, v.cfg.BatchSize*v.cfg.DenseInputDim),
	}
	for t := 0; t < v.cfg.NumTables; t++ {
		b := v.gen.Next()
		req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
	}
	return req
}

// proportionalReplan cuts a freshly profiled window's CDF at 70% and 95%
// access coverage (embedding.ProportionalCuts), mirroring what the DP
// chooses for these geometries without re-fitting the cost model inline.
// It reads the row count off the window itself, so it works for any
// model — including variants deployed by an external admin this example
// has no client-side state for.
func proportionalReplan(window []*embedding.AccessStats) ([]int64, error) {
	return embedding.NewCDF(window[0]).ProportionalCuts(0.70, 0.95), nil
}

func main() {
	duration := flag.Duration("duration", 12*time.Second, "how long to drive traffic")
	flag.Parse()

	cfgHot := model.RM1().WithRows(20_000).WithName("rm1-hot")
	cfgHot.NumTables = 3 // keep the socket count friendly
	cfgSlow := model.RM1().WithRows(12_000).WithName("rm1-slow")
	cfgSlow.NumTables = 2
	cfgSlow.BatchSize = 2
	cfgBurst := model.RM1().WithRows(14_000).WithName("rm1-burst")
	cfgBurst.NumTables = 2

	hot := newVariant("hot", cfgHot, 5, *duration/4)
	slow := newVariant("slow", cfgSlow, 1005, 2**duration/3)
	burst := newVariant("burst", cfgBurst, 2005, 0)
	byName := map[string]*variant{hot.name: hot, slow.name: slow, burst.name: burst}

	mHot, err := model.New(cfgHot, 77)
	if err != nil {
		log.Fatal(err)
	}
	mSlow, err := model.New(cfgSlow, 1077)
	if err != nil {
		log.Fatal(err)
	}

	// The initial set: both variants behind ONE router and ONE frontend,
	// each shard a TCP microservice, each variant with its own dynamic
	// batcher. "burst" arrives later, over the admin API.
	md, err := serving.BuildMulti(
		serving.ModelSpec{
			Name: hot.name, Model: mHot, Stats: hot.window(100),
			Boundaries: []int64{2_000, 8_000, cfgHot.RowsPerTable},
			Options: serving.BuildOptions{
				Transport: serving.TransportTCP,
				Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfgHot.BatchSize, MaxDelay: 500 * time.Microsecond},
			},
		},
		serving.ModelSpec{
			Name: slow.name, Model: mSlow, Stats: slow.window(100),
			Boundaries: []int64{1_500, 5_000, cfgSlow.RowsPerTable},
			Options: serving.BuildOptions{
				Transport: serving.TransportTCP,
				Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfgSlow.BatchSize, MaxDelay: 500 * time.Microsecond},
			},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer md.Close()
	for _, name := range md.Models() {
		ld, _ := md.Deployment(name)
		fmt.Printf("model %q: %d embedding shards x %d tables over TCP microservices\n",
			name, ld.Table().NumShards(0), byName[name].cfg.NumTables)
	}

	// Export the multi-model dispatching frontend over net/rpc and drive
	// all traffic through the wire; the Model field routes each request.
	// The same listener carries the versioned admin control plane.
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		log.Fatal(err)
	}
	frontend, err := serving.DialPredict(addr, "Frontend")
	if err != nil {
		log.Fatal(err)
	}
	defer frontend.Close()
	admin, err := serving.DialAdmin(addr, "Frontend")
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	fmt.Printf("multi-model predict frontend + admin control plane exported at %s\n", addr)

	// Live autoscaler: every shard of every variant's current epoch scales
	// on its OWN variant's offered QPS — the per-model meters live in the
	// frontend now (created at deploy, dropped at undeploy, so a retired
	// model's metrics never linger).
	as := &serving.LiveAutoscaler{
		Interval:        500 * time.Millisecond,
		OfferedModelQPS: md.OfferedQPS,
	}
	// One repartition loop per variant, sharing one policy: firing state
	// is per model, so variants profile and swap on independent cadences.
	// The controller binding keeps loops and scaling entries in step with
	// the served set: Deploy wires a variant in, Undeploy tears it down
	// and forgets its policy state.
	policy := &cluster.RepartitionPolicy{
		MinSkew: 0.35,
		// Dense dispatches, not client requests: the batcher fuses ~3
		// requests per forward batch at this MaxBatch, so 25 dispatches ≈
		// 75 client requests of warm-up per variant.
		MinRequests: 25,
		MinInterval: *duration, // at most one swap per variant per run
	}
	// The epoch's own geometry drives the scaling entries (not the
	// client-side variant map: a model can be deployed by an external
	// admin this example has no generator for).
	scaledFor := func(name string, ld *serving.LiveDeployment) []*serving.AutoscaledShard {
		rt := ld.Table()
		if rt == nil {
			return nil
		}
		scaled := []*serving.AutoscaledShard{}
		for t := 0; t < len(rt.Boundaries); t++ {
			for s := 0; s < rt.NumShards(t); s++ {
				t, s := t, s
				lo := int64(0)
				if s > 0 {
					lo = rt.Boundaries[t][s-1]
				}
				hi := rt.Boundaries[t][s]
				sorted := rt.Pre.Sorted[t]
				entry := &serving.AutoscaledShard{
					Name:   fmt.Sprintf("%s-e%d-t%d-s%d", name, rt.Epoch, t, s),
					Model:  name,
					Pool:   rt.Pools[t][s],
					QPSMax: 20 * float64(s+1), // hotter shards saturate sooner
					Spawn: func() (serving.GatherClient, error) {
						return serving.NewEmbeddingShard(t, s, sorted, lo, hi)
					},
					MaxReplicas: 6,
				}
				// The hottest shard scales on its pull queue's measured
				// pressure instead of offered QPS: depth EWMA above one
				// queued gather per replica adds a replica inside the live
				// epoch, no repartition needed.
				if s == 0 {
					entry.Queue = &serving.QueuePolicy{HighDepth: 1, LowDepth: 0.05, Cooldown: 2 * time.Second}
				}
				scaled = append(scaled, entry)
			}
		}
		return scaled
	}
	md.Controller().Bind(&serving.AutoscalerBinding{
		Autoscaler: as,
		Policy:     policy,
		Replan: func(_ string, stats []*embedding.AccessStats) ([]int64, error) {
			return proportionalReplan(stats)
		},
		Shards: scaledFor,
		OnRepartition: func(name string, retired int64, err error) {
			if err != nil {
				log.Printf("repartition %s: %v", name, err)
				return
			}
			fmt.Printf("-> repartitioned %q live: retired epoch %d, serving epoch %d (other variants untouched)\n",
				name, retired, md.Epoch(name))
		},
	})
	as.Start()
	defer as.Stop()

	// Drive stepped Poisson traffic: low -> high -> low; each variant's
	// hot set drifts at its own time, and the lifecycle events land
	// mid-run: deploy "burst" at half time, undeploy "hot" at 3/4.
	pattern, err := workload.NewTrafficPattern([]workload.TrafficPhase{
		{Start: 0, TargetQPS: 10},
		{Start: *duration / 3, TargetQPS: 60},
		{Start: 2 * *duration / 3, TargetQPS: 15},
	}, *duration)
	if err != nil {
		log.Fatal(err)
	}
	arrivals := workload.NewPoissonArrivals(pattern, 9)
	deployAt, undeployAt := *duration/2, 3**duration/4
	rotation := []*variant{hot, hot, slow} // 2/3 hot, 1/3 slow to start
	start := time.Now()
	var wg sync.WaitGroup
	total := 0
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		time.Sleep(time.Until(start.Add(at)))
		for _, v := range byName {
			if v.driftAt > 0 && at > v.driftAt {
				v.drift.SetShift(v.cfg.RowsPerTable / 2)
				v.driftAt = 0
				fmt.Printf("-> hotness drift injected into %q at %v\n", v.name, at.Round(time.Millisecond))
			}
		}
		if deployAt > 0 && at > deployAt {
			deployAt = 0
			// Deploy "burst" into the running frontend over the wire: the
			// spec (config + seed + profiling counts + plan) rides the
			// admin RPC; the frontend builds, pre-warms and publishes
			// while traffic keeps flowing, and the binding starts its
			// repartition loop and scaling entries automatically.
			window := burst.window(100)
			counts := make([][]int64, len(window))
			for t, st := range window {
				counts[t] = st.Counts
			}
			boundaries, _ := proportionalReplan(window)
			var reply serving.AdminDeployReply
			err := admin.Deploy(context.Background(), &serving.AdminDeployRequest{
				Name: burst.name, Config: cfgBurst, Seed: 2077,
				Counts: counts, Boundaries: boundaries,
				Options: serving.BuildOptions{
					Transport: serving.TransportTCP,
					Batching:  &serving.BatcherOptions{MaxBatch: 3 * cfgBurst.BatchSize, MaxDelay: 500 * time.Microsecond},
				},
			}, &reply)
			if err != nil {
				log.Fatalf("admin deploy: %v", err)
			}
			rotation = []*variant{hot, burst, slow} // burst joins the mix
			fmt.Printf("-> deployed %q live at %v: epoch %d, %d shards (no restart, others untouched)\n",
				reply.Model, at.Round(time.Millisecond), reply.Epoch, reply.Shards)
		}
		if undeployAt > 0 && at > undeployAt {
			undeployAt = 0
			// Take "hot" out of the client rotation first, then drain it
			// out of the frontend: its repartition loop stops, its final
			// epoch drains, its shard services tear down, and the name
			// becomes reusable — "slow" and "burst" never notice.
			rotation = []*variant{burst, burst, slow}
			if _, err := admin.Undeploy(context.Background(), hot.name); err != nil {
				log.Fatalf("admin undeploy: %v", err)
			}
			fmt.Printf("-> undeployed %q live at %v: drained, unregistered, shard services released\n",
				hot.name, at.Round(time.Millisecond))
		}
		v := rotation[total%len(rotation)]
		total++
		v.served++
		wg.Add(1)
		// Build the request on the arrival loop (the generators are not
		// concurrency-safe), then issue it from its own client goroutine.
		req := v.request()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var reply serving.PredictReply
			if err := frontend.Predict(ctx, req, &reply); err != nil {
				log.Printf("predict: %v", err)
			}
		}()
	}
	wg.Wait()
	// Stop the control loop before the summary so a last-tick swap lands
	// (Stop is idempotent; the deferred call becomes a no-op).
	as.Stop()

	fmt.Printf("served %d queries over %v (%d epoch swaps; final served set %v)\n",
		total, time.Since(start).Round(time.Millisecond), md.Router.Swaps.Value(), md.Models())
	for _, st := range md.Controller().Status() {
		served := 0
		if v := byName[st.Model]; v != nil {
			served = v.served
		}
		ld, _ := md.Deployment(st.Model)
		rt := ld.Table()
		fmt.Printf("model %q: %d queries (%.1f offered qps at close), epoch %d (%d swaps), dense P50=%v P95=%v, cached tables %d bytes\n",
			st.Model, served, st.OfferedQPS, st.Epoch, st.Swaps,
			ld.Dense.Latency.Quantile(0.50).Round(time.Microsecond),
			ld.Dense.Latency.Quantile(0.95).Round(time.Microsecond),
			st.Counters.CachedSortedBytes)
		if ld.Batcher != nil {
			fmt.Printf("model %q batcher: %d requests fused into %d batches (mean batch %.1f inputs)\n",
				st.Model, ld.Batcher.Requests.Value(), ld.Batcher.Batches.Value(), ld.Batcher.BatchSizes.Mean())
		}
		for s := 0; s < rt.NumShards(0); s++ {
			fmt.Printf("model %q epoch %d table0 shard %d: replicas=%d utility=%.1f%% P95=%v\n",
				st.Model, rt.Epoch, s+1, rt.Pools[0][s].Size(), 100*rt.Utility(0, s),
				rt.Shards[0][s].Latency.Quantile(0.95).Round(time.Microsecond))
		}
		// The admin status carries every live shard's pull-queue pressure:
		// the same depth/service EWMAs the queue-depth autoscaler scales on.
		for _, q := range st.Queues {
			fmt.Printf("model %q queue t%d/s%d: replicas=%d workers=%d depth=%d/%d depth-ewma=%.2f service-ewma=%v enqueued=%d rejected=%d\n",
				st.Model, q.Table, q.Shard, q.Replicas, q.Workers, q.Depth, q.Capacity,
				q.DepthEWMA, q.ServiceEWMA.Round(time.Microsecond), q.Enqueued, q.Rejected)
		}
		for _, label := range ld.EpochUtility.Labels() {
			if val, ok := ld.EpochUtility.Value(label); ok {
				fmt.Printf("model %q retired gauge %s = %.1f%%\n", st.Model, label, 100*val)
			}
		}
	}
	fmt.Printf("undeployed %q offered-qps meter after retirement: %.1f (metrics do not outlive the model)\n",
		hot.name, md.OfferedQPS(hot.name))
}
