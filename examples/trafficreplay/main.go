// Trafficreplay: the Fig. 19 dynamic-traffic experiment with custom knobs.
//
// Simulates a Kubernetes cluster serving the chosen model as traffic steps
// up and down (the paper's 30-minute staircase), with HPA controllers
// scaling each shard deployment and pod cold-starts gating capacity.
// Prints the minute-by-minute timeline for model-wise and ElasticRec.
//
// Run with: go run ./examples/trafficreplay [-peak 250] [-model RM1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/perfmodel"
)

func main() {
	peak := flag.Float64("peak", 250, "peak offered QPS")
	modelName := flag.String("model", "RM1", "RM1 | RM2 | RM3")
	flag.Parse()

	var cfg model.Config
	switch *modelName {
	case "RM1":
		cfg = model.RM1()
	case "RM2":
		cfg = model.RM2()
	case "RM3":
		cfg = model.RM3()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	dc := core.DynamicTrafficConfig{
		Platform: perfmodel.CPUOnly,
		Model:    cfg,
		PeakQPS:  *peak,
	}
	mw, err := core.RunDynamicTraffic(dc, deploy.PolicyModelWise)
	if err != nil {
		log.Fatal(err)
	}
	er, err := core.RunDynamicTraffic(dc, deploy.PolicyElastic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dynamic traffic replay: %s, peak %.0f QPS, SLA 400ms\n\n", cfg.Name, *peak)
	fmt.Printf("%6s %8s | %8s %9s %9s | %8s %9s %9s\n",
		"minute", "target", "MW QPS", "MW mem", "MW tail", "ER QPS", "ER mem", "ER tail")
	for i := range mw.Points {
		m := mw.Points[i]
		if m.Time%time.Minute != 0 {
			continue
		}
		e := er.Points[i]
		fmt.Printf("%6.0f %8.0f | %8.0f %8.1fG %9v | %8.0f %8.1fG %9v\n",
			m.Time.Minutes(), m.TargetQPS,
			m.AchievedQPS, float64(m.MemBytes)/(1<<30), m.TailLatency.Round(time.Millisecond),
			e.AchievedQPS, float64(e.MemBytes)/(1<<30), e.TailLatency.Round(time.Millisecond))
	}
	fmt.Printf("\npeak memory: model-wise %.0f GB vs ElasticRec %.0f GB (%.1fx)\n",
		float64(mw.PeakMemBytes)/(1<<30), float64(er.PeakMemBytes)/(1<<30),
		float64(mw.PeakMemBytes)/float64(er.PeakMemBytes))
	fmt.Printf("SLA violations (10s samples): model-wise %d, ElasticRec %d\n",
		mw.SLAViolations, er.SLAViolations)
}
