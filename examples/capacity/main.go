// Capacity: what-if deployment costing at the paper's full scale.
//
// For a chosen model and platform, sweep the target QPS and print, for
// each policy (model-wise, ElasticRec, and on CPU-GPU the GPU-cache
// baseline), the fleet-wide memory allocation, replica counts, server
// counts and modelled latency — the planning workflow behind Figs. 13-18.
//
// Run with: go run ./examples/capacity [-model RM1] [-platform cpu-only]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
)

func main() {
	modelName := flag.String("model", "RM1", "RM1 | RM2 | RM3")
	platform := flag.String("platform", "cpu-only", "cpu-only | cpu-gpu")
	flag.Parse()

	var cfg model.Config
	switch *modelName {
	case "RM1":
		cfg = model.RM1()
	case "RM2":
		cfg = model.RM2()
	case "RM3":
		cfg = model.RM3()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}
	prof, err := perfmodel.ProfileFor(perfmodel.Platform(*platform))
	if err != nil {
		log.Fatal(err)
	}
	planner := &deploy.Planner{Profile: prof}

	fmt.Printf("capacity plan for %s on %s (%d tables, %s of embeddings)\n\n",
		cfg.Name, prof.Platform, cfg.NumTables, metrics.FormatBytes(cfg.SparseBytes()))
	fmt.Printf("%-8s %-18s %10s %9s %8s %10s\n",
		"target", "policy", "memory", "replicas", "servers", "latency")

	policies := []deploy.Policy{deploy.PolicyModelWise, deploy.PolicyElastic}
	if prof.Platform == perfmodel.CPUGPU {
		policies = append(policies, deploy.PolicyModelWiseCache)
	}
	for _, target := range []float64{50, 100, 200, 400} {
		for _, policy := range policies {
			plan, err := planner.Plan(policy, cfg, target)
			if err != nil {
				log.Fatal(err)
			}
			servers, err := plan.ServersNeeded(prof.Node)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8.0f %-18s %10s %9d %8d %10v\n",
				target, string(policy),
				metrics.FormatBytes(plan.TotalMemoryBytes()),
				plan.TotalReplicas(), servers,
				plan.AvgLatency.Round(time.Millisecond))
		}
		fmt.Println()
	}

	// Show the DP's chosen partitioning once.
	plan, cm, err := planner.PartitionTable(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ests, err := cm.Evaluate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DP partitioning (per table, %d shards):\n", plan.NumShards())
	for i, e := range ests {
		fmt.Printf("  S%d: rows [%d, %d)  capacity %s  est. QPSmax %.0f\n",
			i+1, e.Lo, e.Hi, metrics.FormatBytes(e.CapacityBytes), e.QPS)
	}
}
