// Heterotables: per-table partitioning for heterogeneous access skew.
//
// The paper's workloads use identically distributed tables, but production
// models mix very hot tables (user-history features) with near-uniform
// ones (long-tail item features). This example profiles per-table traces
// with different localities, runs Algorithm 2 separately per table
// (Sec. VI-A), and shows how shard counts and replica allocations adapt
// to each table's skew.
//
// Run with: go run ./examples/heterotables
package main

import (
	"fmt"
	"log"

	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

func main() {
	cfg := model.RM1()
	cfg.NumTables = 6
	cfg = cfg.WithName("rm1-hetero")

	// Table localities from "94% of accesses in the hot 10%" down to
	// nearly uniform.
	localities := []float64{0.94, 0.90, 0.70, 0.50, 0.30, 0.12}
	cdfs := make([]partition.CDF, cfg.NumTables)
	for t, p := range localities {
		s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, p, 0.9)
		if err != nil {
			log.Fatal(err)
		}
		cdfs[t] = s.Analytic()
	}

	planner := &deploy.Planner{Profile: perfmodel.CPUOnlyProfile()}
	plan, err := planner.PlanElasticPerTable(cfg, 100, cdfs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("per-table plans for %s @100 QPS (CPU-only):\n\n", cfg.Name)
	fmt.Printf("%-6s %-9s %-7s %-30s %s\n", "table", "locality", "shards", "replicas per shard", "table memory")
	boundaries, err := plan.TableBoundaries()
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < cfg.NumTables; t++ {
		var reps []int
		var mem int64
		for _, s := range plan.EmbeddingShards() {
			if s.Table == t {
				reps = append(reps, s.Replicas)
				mem += s.TotalMemBytes()
			}
		}
		fmt.Printf("%-6d %-9s %-7d %-30s %s\n",
			t, fmt.Sprintf("%.0f%%", 100*localities[t]), len(boundaries[t]),
			fmt.Sprint(reps), metrics.FormatBytes(mem))
	}

	mw, err := planner.PlanModelWise(cfg, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal: elastic %s vs model-wise %s (%.2fx reduction)\n",
		metrics.FormatBytes(plan.TotalMemoryBytes()),
		metrics.FormatBytes(mw.TotalMemoryBytes()),
		float64(mw.TotalMemoryBytes())/float64(plan.TotalMemoryBytes()))
}
