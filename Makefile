# CI runs exactly these targets; run them locally before pushing.

GO ?= go

.PHONY: build test test-short race race-repartition lifecycle-smoke bench bench-smoke bench-json bench-guard fuzz-smoke scenario-smoke scenario-guard fmt fmt-check vet lint-doc lint-invariants ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-check the concurrency-heavy packages: the dynamic batcher and the
# lock-free dense hot path live in serving; cluster and workload drive
# goroutine-based control loops and traffic generators. The scenario
# harness runs without -short so its live runs (concurrent clients against
# fault-injected pools) execute under the detector.
race:
	$(GO) test -race -short ./internal/serving/... ./internal/cluster/... ./internal/workload/...
	$(GO) test -race -count=1 ./internal/scenario/...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# The zero-downtime plan-swap and model-lifecycle acceptance tests under
# the race detector: 8 concurrent clients, 10 swaps, deploy/undeploy under
# fire, both transports — plus the pull-pool invariant suite (no gather
# lost or duplicated across scale/kill churn, typed backpressure,
# drain-to-zero on close).
race-repartition:
	$(GO) test -race -run 'Repartition|Straggler|Cancels|Lifecycle|ReplanMemo|PullPool' -count=1 ./internal/serving/

# Control-plane smoke: the model-lifecycle closed loop (deploy/undeploy
# over the versioned admin RPC) in short mode — CI runs this in the checks
# job.
lifecycle-smoke:
	$(GO) run ./cmd/elasticrec -short lifecycle

# One iteration of the micro-kernel and concurrent-serving benches — a CI
# smoke test that the harness still runs, with output kept as an artifact.
bench-smoke:
	$(GO) test -run='^$$' -bench='Kernel|ConcurrentPredict' -benchtime=1x .

# Machine-readable serving-bench artifact: name, ns/op, allocs/op and the
# closed-loop qps metric per bench row, for run-over-run trajectory diffs.
# Two steps (not a pipe) so a bench crash fails the target instead of
# being masked by benchjson's exit status. BENCH_serving.json is checked
# in as the bench-guard baseline — commit the refresh when a change
# legitimately moves it.
bench-json:
	$(GO) test -run='^$$' -bench='Serving|Wire' -benchmem -benchtime=20x . > bench-serving.txt
	$(GO) run ./cmd/benchjson < bench-serving.txt > BENCH_serving.json
	@echo "wrote BENCH_serving.json"

# Bench-regression smoke: re-measure the deterministic serving benches
# briefly and fail if allocs/op regressed >25% against the checked-in
# BENCH_serving.json baseline. Only the single-driver rows are guarded
# (EndToEndPredict, the Repartition regimes, and the Wire_Codec
# encode/decode rows — all deterministic allocators): the concurrent rows'
# allocs/op depends on the batch-fusing ratio, which varies with core
# count and timing — those stay trajectory-only in BENCH_serving.json.
# benchtime matches bench-json's 20x so first-op pool-miss allocations
# amortize identically on both sides (QueueDepthScaling also saturates its
# replica cap within that window, so its allocs/op is steady-state too).
# Refresh the baseline with `make bench-json` when a change legitimately
# moves it.
bench-guard:
	$(GO) test -run='^$$' -bench='Serving_(EndToEndPredict|Repartition|QueueDepthScaling)|Wire_Codec' -benchmem -benchtime=20x . > bench-guard.txt
	$(GO) run ./cmd/benchjson < bench-guard.txt > bench-guard.json
	$(GO) run ./cmd/benchguard -baseline BENCH_serving.json -current bench-guard.json -filter Serving_EndToEndPredict,Serving_Repartition,Serving_QueueDepthScaling,Wire_Codec -max-regress 0.25

# Fuzz smoke: run the wire-codec fuzz target briefly — malformed frames
# must error, never panic or over-allocate, and every frame that decodes
# must re-encode canonically. CI runs this in the checks job; run longer
# locally with e.g. -fuzztime=5m when touching the codec.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWireCodec -fuzztime=10s ./internal/serving/wire/

# Scenario smoke: run every checked-in declarative scenario
# (examples/scenarios/*.json) in short mode against a live deployment,
# writing one BENCH_scenario_<name>.json artifact per spec into the repo
# root.
scenario-smoke:
	$(GO) run ./cmd/elasticrec -short scenario -config examples/scenarios -out .

# Scenario-regression gate: diff the freshly measured scenario artifacts
# against the checked-in baselines (examples/scenarios/baselines/) on
# p50/p99 latency ratio and absolute error-rate increase. The latency
# threshold is generous (4x) because CI hardware varies; the error-rate
# gate is hardware-independent — fault-injection runs must stay at zero
# leaked failures. Refresh baselines by re-running `make scenario-smoke`
# and copying the artifacts into the baselines directory when a change
# legitimately moves them.
scenario-guard:
	$(GO) run ./cmd/scenarioguard -baseline-dir examples/scenarios/baselines -current-dir .

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Documentation lint: every package must carry a godoc package comment
# (see docs/ARCHITECTURE.md for the layer map the comments plug into).
lint-doc:
	$(GO) run ./cmd/doccheck ./internal ./cmd ./examples

# Invariant lint: the internal/analysis suite typechecks the tree with
# go/types and enforces the hand-maintained pairing disciplines — epoch
# pins released on every path, pooled wire buffers recycled, atomic
# fields never mixed with plain access, contexts threaded first-param.
# Intentional violations are annotated in place with
# //lint:escape <pass> <reason>; see docs/ARCHITECTURE.md "Static
# invariants".
lint-invariants:
	$(GO) run ./cmd/invariantcheck ./internal/... ./cmd/...

ci: fmt-check vet lint-doc lint-invariants build test-short race race-repartition lifecycle-smoke bench-smoke fuzz-smoke
