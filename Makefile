# CI runs exactly these targets; run them locally before pushing.

GO ?= go

.PHONY: build test test-short race bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-check the concurrency-heavy packages: the dynamic batcher and the
# lock-free dense hot path live in serving; cluster and workload drive
# goroutine-based control loops and traffic generators.
race:
	$(GO) test -race -short ./internal/serving/... ./internal/cluster/... ./internal/workload/...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One iteration of the micro-kernel and concurrent-serving benches — a CI
# smoke test that the harness still runs, with output kept as an artifact.
bench-smoke:
	$(GO) test -run='^$$' -bench='Kernel|ConcurrentPredict' -benchtime=1x .

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test-short race bench-smoke
