// Package repro_test is the benchmark harness: one benchmark per table and
// figure of the ElasticRec paper (regenerating the reported rows/series),
// plus ablation benches for the design choices called out in DESIGN.md and
// microbenchmarks of the hot kernels.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report their headline scalar through b.ReportMetric
// (e.g. memory-reduction factors), so the bench output doubles as the
// experiment summary.
package repro_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bucketize"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/embedding"
	"repro/internal/mlp"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/serving"
	"repro/internal/serving/wire"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func runTable(b *testing.B, fn func() (*core.Table, error)) *core.Table {
	b.Helper()
	var tab *core.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// --- Tables I & II ---

func BenchmarkTablesIandII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := core.TablesIandII(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figures ---

func BenchmarkFig03_OccupancyBreakdown(b *testing.B) {
	runTable(b, core.Figure3)
}

func BenchmarkFig05_LayerQPS(b *testing.B) {
	runTable(b, core.Figure5)
}

func BenchmarkFig06_AccessDistribution(b *testing.B) {
	runTable(b, func() (*core.Table, error) { return core.Figure6(500_000, 10) })
}

func BenchmarkFig09_GatherQPSCurve(b *testing.B) {
	runTable(b, core.Figure9)
}

func BenchmarkFig10_DPWorkedExample(b *testing.B) {
	cost := func(lo, hi int64) float64 { return float64((hi-lo)*(hi-lo)) / float64(lo+1) }
	pt := &partition.Partitioner{Granularity: 1}
	for i := 0; i < b.N; i++ {
		plan, err := pt.PartitionFixedShards(5, 3, cost)
		if err != nil || plan.Cost != 4 {
			b.Fatalf("plan %v err %v", plan, err)
		}
	}
}

func BenchmarkFig11_Bucketization(b *testing.B) {
	batch := &embedding.Batch{Indices: []int64{1, 7, 3, 4, 8}, Offsets: []int32{0, 2}}
	boundaries := []int64{6, 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bucketize.Split(batch, boundaries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a_MLPSize(b *testing.B)   { runTable(b, core.Figure12a) }
func BenchmarkFig12b_Locality(b *testing.B)  { runTable(b, core.Figure12b) }
func BenchmarkFig12c_NumTables(b *testing.B) { runTable(b, core.Figure12c) }
func BenchmarkFig12d_NumShards(b *testing.B) { runTable(b, core.Figure12d) }

// reportReduction attaches model-wise/ElasticRec ratios to the bench.
func reportReduction(b *testing.B, platform perfmodel.Platform, target float64) {
	b.Helper()
	sys, err := core.NewSystem(platform)
	if err != nil {
		b.Fatal(err)
	}
	var totalMem, totalSrv float64
	for _, cfg := range model.StateOfTheArt() {
		cmp, err := sys.Compare(cfg, target)
		if err != nil {
			b.Fatal(err)
		}
		totalMem += cmp.MemoryReductionX()
		sx, err := cmp.ServerReductionX(sys.Profile.Node)
		if err != nil {
			b.Fatal(err)
		}
		totalSrv += sx
	}
	b.ReportMetric(totalMem/3, "avg-mem-reduction-x")
	b.ReportMetric(totalSrv/3, "avg-server-reduction-x")
}

func BenchmarkFig13_MemoryCPUOnly(b *testing.B) {
	runTable(b, core.Figure13)
	reportReduction(b, perfmodel.CPUOnly, core.TargetQPSCPUOnly)
}

func BenchmarkFig14_UtilityCPUOnly(b *testing.B) {
	tab := runTable(b, core.Figure14)
	if len(tab.Rows) == 0 {
		b.Fatal("no rows")
	}
}

func BenchmarkFig15_ServersCPUOnly(b *testing.B) {
	runTable(b, core.Figure15)
}

func BenchmarkFig16_MemoryCPUGPU(b *testing.B) {
	runTable(b, core.Figure16)
	reportReduction(b, perfmodel.CPUGPU, core.TargetQPSCPUGPU)
}

func BenchmarkFig17_UtilityCPUGPU(b *testing.B) {
	runTable(b, core.Figure17)
}

func BenchmarkFig18_ServersCPUGPU(b *testing.B) {
	runTable(b, core.Figure18)
}

func BenchmarkFig19_DynamicTraffic(b *testing.B) {
	cfg := core.DynamicTrafficConfig{Platform: perfmodel.CPUOnly, Model: model.RM1(), PeakQPS: 250}
	var ratio float64
	for i := 0; i < b.N; i++ {
		mw, err := core.RunDynamicTraffic(cfg, deploy.PolicyModelWise)
		if err != nil {
			b.Fatal(err)
		}
		er, err := core.RunDynamicTraffic(cfg, deploy.PolicyElastic)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(mw.PeakMemBytes) / float64(er.PeakMemBytes)
	}
	b.ReportMetric(ratio, "peak-mem-ratio-x")
}

func BenchmarkFig20_GPUCache(b *testing.B) {
	runTable(b, core.Figure20)
}

// --- Ablation benches (DESIGN.md) ---

// rm1CostModel builds the Algorithm 1 estimator at paper scale.
func rm1CostModel(b *testing.B, minMem int64) *partition.CostModel {
	b.Helper()
	prof := perfmodel.CPUOnlyProfile()
	if minMem > 0 {
		prof.MinMemAlloc = minMem
	}
	pl := &deploy.Planner{Profile: prof}
	cm, err := pl.CostModel(model.RM1())
	if err != nil {
		b.Fatal(err)
	}
	return cm
}

// BenchmarkAblation_PartitionerPolicy compares the DP against equal-size
// and greedy-coverage partitioning under the same cost model, reporting
// each policy's expected memory in GB.
func BenchmarkAblation_PartitionerPolicy(b *testing.B) {
	cm := rm1CostModel(b, 0)
	rows := model.RM1().RowsPerTable
	pt := &partition.Partitioner{}
	var dpGB, eqGB, grGB float64
	for i := 0; i < b.N; i++ {
		dp, err := pt.Partition(rows, cm.CostFunc())
		if err != nil {
			b.Fatal(err)
		}
		eq, err := partition.EqualSize(rows, dp.NumShards())
		if err != nil {
			b.Fatal(err)
		}
		eqCost, err := partition.PlanCost(eq, cm.CostFunc())
		if err != nil {
			b.Fatal(err)
		}
		gr, err := partition.GreedyCoverage(cm.CDF, []float64{0.5, 0.9, 0.99})
		if err != nil {
			b.Fatal(err)
		}
		grCost, err := partition.PlanCost(gr, cm.CostFunc())
		if err != nil {
			b.Fatal(err)
		}
		dpGB, eqGB, grGB = dp.Cost/(1<<30), eqCost/(1<<30), grCost/(1<<30)
	}
	b.ReportMetric(dpGB, "dp-GB")
	b.ReportMetric(eqGB, "equal-size-GB")
	b.ReportMetric(grGB, "greedy-GB")
}

// BenchmarkAblation_MinMemAlloc sweeps the per-container minimum memory
// and reports the DP's chosen shard count at each point (Fig. 12d's
// plateau driver).
func BenchmarkAblation_MinMemAlloc(b *testing.B) {
	rows := model.RM1().RowsPerTable
	pt := &partition.Partitioner{}
	sweep := []int64{64 << 20, 256 << 20, 512 << 20, 2 << 30}
	shards := make([]float64, len(sweep))
	for i := 0; i < b.N; i++ {
		for j, mm := range sweep {
			cm := rm1CostModel(b, mm)
			plan, err := pt.Partition(rows, cm.CostFunc())
			if err != nil {
				b.Fatal(err)
			}
			shards[j] = float64(plan.NumShards())
		}
	}
	b.ReportMetric(shards[0], "shards-at-64MB")
	b.ReportMetric(shards[2], "shards-at-512MB")
	b.ReportMetric(shards[3], "shards-at-2GB")
}

// BenchmarkAblation_QPSRegression compares the default piecewise-linear
// regression against the log-log fit on held-out gather counts.
func BenchmarkAblation_QPSRegression(b *testing.B) {
	prof := perfmodel.CPUOnlyProfile()
	train := prof.SweepGatherQPS(32, 32, perfmodel.DefaultSweep(128))
	holdout := prof.SweepGatherQPS(32, 32, []int{3, 11, 29, 47, 73, 101, 119})
	var pwErr, llErr float64
	for i := 0; i < b.N; i++ {
		pw, err := perfmodel.NewPiecewiseLinearQPS(train)
		if err != nil {
			b.Fatal(err)
		}
		ll, err := perfmodel.NewLogLogQPS(train)
		if err != nil {
			b.Fatal(err)
		}
		pwErr = perfmodel.MeanAbsRelError(pw, holdout)
		llErr = perfmodel.MeanAbsRelError(ll, holdout)
	}
	b.ReportMetric(pwErr*100, "piecewise-err-%")
	b.ReportMetric(llErr*100, "loglog-err-%")
}

// BenchmarkAblation_HotnessSort quantifies Fig. 8: partitioning the sorted
// table vs. an unsorted one (uniform CDF — hot rows scattered) under the
// same estimator.
func BenchmarkAblation_HotnessSort(b *testing.B) {
	cmSorted := rm1CostModel(b, 0)
	uniform := &partition.CostModel{
		CDF:             uniformCDF(model.RM1().RowsPerTable),
		PoolingPerInput: cmSorted.PoolingPerInput,
		BatchSize:       cmSorted.BatchSize,
		VectorBytes:     cmSorted.VectorBytes,
		MinMemAlloc:     cmSorted.MinMemAlloc,
		TargetTraffic:   cmSorted.TargetTraffic,
		QPS:             cmSorted.QPS,
	}
	pt := &partition.Partitioner{}
	rows := model.RM1().RowsPerTable
	var sortedGB, unsortedGB float64
	for i := 0; i < b.N; i++ {
		sp, err := pt.Partition(rows, cmSorted.CostFunc())
		if err != nil {
			b.Fatal(err)
		}
		up, err := pt.Partition(rows, uniform.CostFunc())
		if err != nil {
			b.Fatal(err)
		}
		sortedGB, unsortedGB = sp.Cost/(1<<30), up.Cost/(1<<30)
	}
	b.ReportMetric(sortedGB, "sorted-GB")
	b.ReportMetric(unsortedGB, "unsorted-GB")
}

// uniformCDFImpl models a table whose hot rows are scattered (Fig. 8a): a
// contiguous shard's traffic share is proportional to its row share.
type uniformCDFImpl struct{ rows int64 }

func uniformCDF(rows int64) partition.CDF { return uniformCDFImpl{rows: rows} }

func (u uniformCDFImpl) Rows() int64 { return u.rows }
func (u uniformCDFImpl) At(j int64) float64 {
	if j <= 0 {
		return 0
	}
	if j >= u.rows {
		return 1
	}
	return float64(j) / float64(u.rows)
}
func (u uniformCDFImpl) RangeProbability(k, j int64) float64 {
	p := u.At(j) - u.At(k)
	if p < 0 {
		return 0
	}
	return p
}

// BenchmarkAblation_DPGranularity sweeps the DP's row-group width and
// reports plan quality (expected GB) at each granularity.
func BenchmarkAblation_DPGranularity(b *testing.B) {
	cm := rm1CostModel(b, 0)
	rows := model.RM1().RowsPerTable
	costs := map[int64]float64{}
	grans := []int64{rows / 64, rows / 512, rows / 2048}
	for i := 0; i < b.N; i++ {
		for _, g := range grans {
			pt := &partition.Partitioner{Granularity: g}
			plan, err := pt.Partition(rows, cm.CostFunc())
			if err != nil {
				b.Fatal(err)
			}
			costs[g] = plan.Cost / (1 << 30)
		}
	}
	b.ReportMetric(costs[grans[0]], "64-groups-GB")
	b.ReportMetric(costs[grans[1]], "512-groups-GB")
	b.ReportMetric(costs[grans[2]], "2048-groups-GB")
}

// --- Kernel microbenchmarks ---

func BenchmarkKernel_GatherPool(b *testing.B) {
	tab, err := embedding.NewRandomTable("bench", 1_000_000, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := workload.NewRNG(2)
	idx := make([]int64, 128)
	for i := range idx {
		idx[i] = rng.Intn(1_000_000)
	}
	dst := make(tensor.Vector, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.GatherPool(dst, idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_MLPForward(b *testing.B) {
	m, err := mlp.New([]int{13, 256, 128, 32}, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := make(tensor.Vector, 13)
	tensor.InitUniform(in, 1, 2)
	out := make(tensor.Vector, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Forward(out, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_DPPartition20M(b *testing.B) {
	cm := rm1CostModel(b, 0)
	pt := &partition.Partitioner{}
	rows := model.RM1().RowsPerTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pt.Partition(rows, cm.CostFunc()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_BucketizeRM1Batch(b *testing.B) {
	cfg := model.RM1()
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 3)
	if err != nil {
		b.Fatal(err)
	}
	batch := gen.NextRanks()
	boundaries := []int64{312504, 2109402, 6836025, cfg.RowsPerTable}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bucketize.Split(batch, boundaries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServing_EndToEndPredict(b *testing.B) {
	cfg := model.RM1().WithRows(50_000).WithName("rm1-bench")
	cfg.NumTables = 4
	m, err := model.New(cfg, 9)
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 4)
	if err != nil {
		b.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 20; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		b.Fatal(err)
	}
	ld, err := serving.BuildElastic(m, stats, []int64{5_000, 20_000, cfg.RowsPerTable}, serving.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer ld.Close()
	req := &serving.PredictRequest{
		BatchSize: cfg.BatchSize,
		DenseDim:  cfg.DenseInputDim,
		Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
	}
	for t := 0; t < cfg.NumTables; t++ {
		batch := gen.Next()
		req.Tables = append(req.Tables, serving.TableBatch{Indices: batch.Indices, Offsets: batch.Offsets})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reply serving.PredictReply
		if err := ld.Predict(context.Background(), req, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Closed-loop concurrent serving benchmarks ---

// concurrentPredictFixture builds a small live deployment plus a pool of
// workload-driven requests for closed-loop load generation.
func concurrentPredictFixture(b *testing.B, batching *serving.BatcherOptions) (*serving.LiveDeployment, []*serving.PredictRequest) {
	b.Helper()
	cfg := model.RM1().WithRows(50_000).WithName("rm1-concurrent-bench")
	cfg.NumTables = 4
	m, err := model.New(cfg, 9)
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 4)
	if err != nil {
		b.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 20; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		b.Fatal(err)
	}
	ld, err := serving.BuildElastic(m, stats, []int64{5_000, 20_000, cfg.RowsPerTable},
		serving.BuildOptions{Batching: batching})
	if err != nil {
		b.Fatal(err)
	}
	rng := workload.NewRNG(77)
	reqs := make([]*serving.PredictRequest, 32)
	for i := range reqs {
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for j := range req.Dense {
			req.Dense[j] = float32(rng.Float64()*2 - 1)
		}
		for t := 0; t < cfg.NumTables; t++ {
			batch := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: batch.Indices, Offsets: batch.Offsets})
		}
		reqs[i] = req
	}
	return ld, reqs
}

// runClosedLoopPredict drives b.N requests through the client from the
// given number of closed-loop in-flight clients and reports sustained QPS.
func runClosedLoopPredict(b *testing.B, client serving.PredictClient, reqs []*serving.PredictRequest, clients int) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				req := reqs[(int(i)+c)%len(reqs)]
				var reply serving.PredictReply
				if err := client.Predict(context.Background(), req, &reply); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
}

// BenchmarkServing_ConcurrentPredict is the closed-loop multi-client
// throughput benchmark: the same deployment is driven by 1 and by 8
// in-flight clients, without and with the dynamic batcher. With the dense
// hot path de-serialized (per-call scratch from the model pool) and fused
// request batches amortizing the gather fan-out, the 8-client rows scale
// with GOMAXPROCS instead of flatlining at the 1-client rate. Compare the
// qps metric across rows, e.g.:
//
//	go test -run='^$' -bench=ConcurrentPredict -benchtime=200x
func BenchmarkServing_ConcurrentPredict(b *testing.B) {
	plain, plainReqs := concurrentPredictFixture(b, nil)
	defer plain.Close()
	batched, batchedReqs := concurrentPredictFixture(b,
		&serving.BatcherOptions{MaxBatch: 4 * model.RM1().BatchSize, MaxDelay: 200 * time.Microsecond})
	defer batched.Close()
	for _, sub := range []struct {
		name    string
		client  serving.PredictClient
		reqs    []*serving.PredictRequest
		clients int
	}{
		{"unbatched/clients=1", plain, plainReqs, 1},
		{"unbatched/clients=8", plain, plainReqs, 8},
		{"batched/clients=1", batched, batchedReqs, 1},
		{"batched/clients=8", batched, batchedReqs, 8},
	} {
		b.Run(sub.name, func(b *testing.B) {
			runClosedLoopPredict(b, sub.client, sub.reqs, sub.clients)
		})
	}
}

// concurrentPredictTCPFixture builds a wire-bound deployment behind
// loopback TCP with the given gather codec, exports the predict frontend
// over the same codec, and returns a dialed network client. The geometry
// isolates the transport: RM1's batch/pooling (32x128 indices per table,
// 64-wide embeddings) keeps the payloads realistic while tiny MLPs keep
// dense compute off the critical path, and the deployment is unbatched so
// each predict fans out 12 gather RPCs (4 tables x 3 shards). opts
// layers gather-path options (GatherRows, RowCacheBytes, WireFP16) on
// top of the transport, which the fixture pins to TCP+codec itself; the
// returned deployment exposes BuildCounters for cache-metric reporting.
func concurrentPredictTCPFixture(b *testing.B, codec serving.WireCodec, opts serving.BuildOptions) (serving.PredictClient, []*serving.PredictRequest, *serving.LiveDeployment, func()) {
	b.Helper()
	cfg := model.Config{
		Name:          "wire-bench",
		DenseInputDim: 13,
		BottomMLP:     []int{16, 64},
		TopMLP:        []int{16, 1},
		NumTables:     4,
		RowsPerTable:  50_000,
		EmbeddingDim:  64,
		Pooling:       128,
		LocalityP:     0.90,
		BatchSize:     32,
	}
	m, err := model.New(cfg, 9)
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 4)
	if err != nil {
		b.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 20; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		b.Fatal(err)
	}
	opts.Transport = serving.TransportTCP
	opts.WireCodec = codec
	ld, err := serving.BuildElastic(m, stats, []int64{5_000, 20_000, cfg.RowsPerTable}, opts)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := ld.ExportPredict("WireBench")
	if err != nil {
		ld.Close()
		b.Fatal(err)
	}
	var client serving.PredictClient
	var closeClient func() error
	if codec == serving.WireGob {
		c, err := serving.DialPredictGob(addr, "WireBench")
		if err != nil {
			ld.Close()
			b.Fatal(err)
		}
		client, closeClient = c, c.Close
	} else {
		c, err := serving.DialPredict(addr, "WireBench")
		if err != nil {
			ld.Close()
			b.Fatal(err)
		}
		client, closeClient = c, c.Close
	}
	rng := workload.NewRNG(77)
	reqs := make([]*serving.PredictRequest, 32)
	for i := range reqs {
		req := &serving.PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for j := range req.Dense {
			req.Dense[j] = float32(rng.Float64()*2 - 1)
		}
		for t := 0; t < cfg.NumTables; t++ {
			batch := gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: batch.Indices, Offsets: batch.Offsets})
		}
		reqs[i] = req
	}
	return client, reqs, ld, func() {
		_ = closeClient()
		ld.Close()
	}
}

// BenchmarkServing_ConcurrentPredictWire is the transport shoot-out: the
// identical deployment and workload served over loopback TCP with gob vs
// binary framed shard+frontend wiring, 8 closed-loop clients each.
// Compare the qps metric between the two rows — the binary codec's
// no-reflection encode/decode and pipelined connections are the entire
// difference.
func BenchmarkServing_ConcurrentPredictWire(b *testing.B) {
	for _, codec := range []serving.WireCodec{serving.WireGob, serving.WireBinary} {
		client, reqs, _, cleanup := concurrentPredictTCPFixture(b, codec, serving.BuildOptions{})
		b.Run("tcp/wire="+string(codec)+"/clients=8", func(b *testing.B) {
			runClosedLoopPredict(b, client, reqs, 8)
		})
		cleanup()
	}
}

// BenchmarkServing_HotRowCache is the gather-path-v2 shoot-out on the
// identical TCP deployment and Zipf-skewed workload: the v1 pooled
// fan-out, the v2 dedup rows fan-out, and v2 with the frontend hot-row
// cache. Compare the qps metric across rows — dedup shrinks every
// gather's index payload, and at this locality most deduped rows then
// resolve in the frontend cache without touching the wire at all. The
// cache row also reports its measured hit rate.
func BenchmarkServing_HotRowCache(b *testing.B) {
	for _, sub := range []struct {
		name string
		opts serving.BuildOptions
	}{
		{"tcp/path=v1", serving.BuildOptions{}},
		{"tcp/path=rows", serving.BuildOptions{GatherRows: true}},
		{"tcp/path=rows+cache", serving.BuildOptions{RowCacheBytes: 32 << 20}},
	} {
		client, reqs, ld, cleanup := concurrentPredictTCPFixture(b, serving.WireBinary, sub.opts)
		b.Run(sub.name+"/clients=8", func(b *testing.B) {
			runClosedLoopPredict(b, client, reqs, 8)
			if bc := ld.BuildCounters(); bc.RowCacheHits+bc.RowCacheMisses > 0 {
				b.ReportMetric(float64(bc.RowCacheHits)/float64(bc.RowCacheHits+bc.RowCacheMisses), "hitrate")
			}
		})
		cleanup()
	}
}

// wireBenchMessages builds representative shard-gather and frontend
// predict messages for codec microbenchmarks: a 32x64 float32 gather
// reply and an RM1-shaped predict request.
func wireBenchMessages() (*wire.GatherReply, *wire.PredictRequest) {
	rng := workload.NewRNG(5)
	rep := &wire.GatherReply{BatchSize: 32, Dim: 64, Pooled: make([]float32, 32*64)}
	for i := range rep.Pooled {
		rep.Pooled[i] = float32(rng.Float64()*2 - 1)
	}
	req := &wire.PredictRequest{
		Model: "rm1", BatchSize: 32, DenseDim: 13,
		Dense: make([]float32, 32*13), Deadline: 1,
	}
	for i := range req.Dense {
		req.Dense[i] = float32(rng.Float64()*2 - 1)
	}
	for t := 0; t < 4; t++ {
		tb := wire.TableBatch{Indices: make([]int64, 32*20), Offsets: make([]int32, 32)}
		for i := range tb.Indices {
			tb.Indices[i] = rng.Intn(1 << 24)
		}
		for i := range tb.Offsets {
			tb.Offsets[i] = int32(i * 20)
		}
		req.Tables = append(req.Tables, tb)
	}
	return rep, req
}

// BenchmarkWire_Codec compares one encode+decode round trip per op under
// the two codecs, message by message. The gob rows use a persistent
// encoder/decoder pair over one buffer — exactly net/rpc's steady state,
// so gob's one-time type descriptors are excluded. wire-bytes/op is the
// encoded frame size.
func BenchmarkWire_Codec(b *testing.B) {
	rep, req := wireBenchMessages()
	b.Run("gather-reply/gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		var n int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(rep); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
			var got wire.GatherReply
			if err := dec.Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n), "wire-bytes/op")
	})
	b.Run("gather-reply/binary", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendGatherReply(buf[:0], rep, false)
			var got wire.GatherReply
			if err := wire.DecodeGatherReply(buf, &got); err != nil {
				b.Fatal(err)
			}
			wire.FreeGatherReply(&got)
		}
		b.ReportMetric(float64(len(buf)), "wire-bytes/op")
	})
	b.Run("gather-reply/binary-quant", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendGatherReply(buf[:0], rep, true)
			var got wire.GatherReply
			if err := wire.DecodeGatherReply(buf, &got); err != nil {
				b.Fatal(err)
			}
			wire.FreeGatherReply(&got)
		}
		b.ReportMetric(float64(len(buf)), "wire-bytes/op")
	})
	b.Run("predict-request/gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		var n int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(req); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
			var got wire.PredictRequest
			if err := dec.Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n), "wire-bytes/op")
	})
	b.Run("predict-request/binary", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendPredictRequest(buf[:0], req)
			var got wire.PredictRequest
			if err := wire.DecodePredictRequest(buf, &got); err != nil {
				b.Fatal(err)
			}
			wire.FreePredictRequest(&got)
		}
		b.ReportMetric(float64(len(buf)), "wire-bytes/op")
	})
}

// multiModelBenchFixture builds a two-variant multi-model deployment plus
// per-variant request pools for closed-loop load generation.
func multiModelBenchFixture(b *testing.B) (*serving.MultiDeployment, map[string][]*serving.PredictRequest) {
	b.Helper()
	specs := []struct {
		name       string
		cfg        model.Config
		seed       uint64
		boundaries []int64
	}{
		{"hot", model.RM1().WithRows(50_000).WithName("rm1-mm-hot"), 9, []int64{5_000, 20_000, 50_000}},
		{"slow", model.RM1().WithRows(20_000).WithName("rm1-mm-slow"), 1009, []int64{2_000, 8_000, 20_000}},
	}
	var modelSpecs []serving.ModelSpec
	reqs := map[string][]*serving.PredictRequest{}
	for _, sp := range specs {
		cfg := sp.cfg
		cfg.NumTables = 4
		m, err := model.New(cfg, sp.seed)
		if err != nil {
			b.Fatal(err)
		}
		s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 4)
		if err != nil {
			b.Fatal(err)
		}
		perTable := make([][]*embedding.Batch, cfg.NumTables)
		for t := range perTable {
			for q := 0; q < 20; q++ {
				perTable[t] = append(perTable[t], gen.Next())
			}
		}
		stats, err := serving.CollectStats(cfg, perTable)
		if err != nil {
			b.Fatal(err)
		}
		modelSpecs = append(modelSpecs, serving.ModelSpec{
			Name: sp.name, Model: m, Stats: stats, Boundaries: sp.boundaries,
		})
		rng := workload.NewRNG(77)
		for i := 0; i < 32; i++ {
			req := &serving.PredictRequest{
				Model:     sp.name,
				BatchSize: cfg.BatchSize,
				DenseDim:  cfg.DenseInputDim,
				Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
			}
			for j := range req.Dense {
				req.Dense[j] = float32(rng.Float64()*2 - 1)
			}
			for t := 0; t < cfg.NumTables; t++ {
				batch := gen.Next()
				req.Tables = append(req.Tables, serving.TableBatch{Indices: batch.Indices, Offsets: batch.Offsets})
			}
			reqs[sp.name] = append(reqs[sp.name], req)
		}
	}
	md, err := serving.BuildMulti(modelSpecs...)
	if err != nil {
		b.Fatal(err)
	}
	return md, reqs
}

// BenchmarkServing_MultiModelPredict measures per-variant serving through
// the multi-model frontend: both variants live behind one router while
// each sub-bench drives one variant closed-loop with 4 clients. The
// "model=NAME" segment feeds cmd/benchjson's per-model BENCH_serving.json
// entries, so each variant's qps trajectory is diffable run-over-run.
func BenchmarkServing_MultiModelPredict(b *testing.B) {
	md, reqs := multiModelBenchFixture(b)
	defer md.Close()
	for _, name := range md.Models() {
		b.Run("model="+name+"/clients=4", func(b *testing.B) {
			runClosedLoopPredict(b, md, reqs[name], 4)
		})
	}
}

// BenchmarkAblation_PartitionScheme compares ElasticRec's row-wise DP
// against table-wise and column-wise partitioning under the same cost
// model (related-work discussion), reporting expected per-table GB.
func BenchmarkAblation_PartitionScheme(b *testing.B) {
	prof := perfmodel.CPUOnlyProfile()
	pl := &deploy.Planner{Profile: prof}
	var rowGB, tableGB, colGB float64
	for i := 0; i < b.N; i++ {
		schemes, err := pl.CompareSchemes(model.RM1(), []int{4})
		if err != nil {
			b.Fatal(err)
		}
		rowGB = schemes[0].MemoryBytes / (1 << 30)
		tableGB = schemes[1].MemoryBytes / (1 << 30)
		colGB = schemes[2].MemoryBytes / (1 << 30)
	}
	b.ReportMetric(rowGB, "row-wise-GB")
	b.ReportMetric(tableGB, "table-wise-GB")
	b.ReportMetric(colGB, "column-wise4-GB")
}

// repartitionBenchFixture builds the swap-bench deployment: 2 tables of
// 20k rows plus the profiling window the plans are cut from.
func repartitionBenchFixture(b *testing.B, opts serving.BuildOptions, boundaries []int64) (*serving.LiveDeployment, []*embedding.AccessStats) {
	b.Helper()
	cfg := model.RM1().WithRows(20_000).WithName("rm1-swap-bench")
	cfg.NumTables = 2
	m, err := model.New(cfg, 9)
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 4)
	if err != nil {
		b.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 20; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		b.Fatal(err)
	}
	ld, err := serving.BuildElastic(m, stats, boundaries, opts)
	if err != nil {
		b.Fatal(err)
	}
	return ld, stats
}

// BenchmarkServing_Repartition measures the control-plane cost of one
// zero-downtime plan swap under the three epoch-reuse regimes (the
// Predict-path cost of a swap is zero by construction — the hot path reads
// one atomic pointer):
//
//   - cold: plan cache disabled — every swap re-preprocesses both tables
//     and rebuilds and re-warms every shard service (the pre-reuse
//     behaviour).
//   - cache-hit: both plans stay in the cache — a swap back to a recent
//     plan reuses the memoized hotness sort and every live shard service.
//   - incremental: one boundary moves per swap with a one-epoch cache —
//     only the two moved shards per table are rebuilt; the unchanged
//     shard services carry over by refcount.
//
// The shards-built/op and shards-reused/op metrics assert the regimes
// structurally (cache-hit must build 0); BENCH_serving.json tracks the
// latency trajectory run-over-run.
func BenchmarkServing_Repartition(b *testing.B) {
	rows := int64(20_000)
	planA := []int64{2_000, 8_000, rows}
	planB := []int64{1_500, 6_000, rows} // every boundary moved
	// The incremental cycle moves only the middle boundary, over three
	// positions: with a one-epoch cache the returning plan's moved shards
	// have aged out, so each swap rebuilds exactly the moved shards while
	// the untouched first shard carries over epoch after epoch.
	incremental := [][]int64{
		{2_000, 8_000, rows},
		{2_000, 9_000, rows},
		{2_000, 10_000, rows},
	}
	run := func(b *testing.B, opts serving.BuildOptions, plans [][]int64) {
		ld, stats := repartitionBenchFixture(b, opts, plans[0])
		defer ld.Close()
		// Prime the rotation so a caching regime reaches its steady
		// state before measurement.
		for i := 0; i < len(plans); i++ {
			if err := ld.Repartition(context.Background(), stats, plans[(i+1)%len(plans)]); err != nil {
				b.Fatal(err)
			}
		}
		base := ld.BuildCounters()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ld.Repartition(context.Background(), stats, plans[(i+1)%len(plans)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		now := ld.BuildCounters()
		b.ReportMetric(float64(now.ShardsBuilt-base.ShardsBuilt)/float64(b.N), "shards-built/op")
		b.ReportMetric(float64(now.ShardsReused-base.ShardsReused)/float64(b.N), "shards-reused/op")
	}
	b.Run("cold", func(b *testing.B) {
		run(b, serving.BuildOptions{PlanCacheEpochs: -1}, [][]int64{planA, planB})
	})
	b.Run("cache-hit", func(b *testing.B) {
		run(b, serving.BuildOptions{}, [][]int64{planA, planB})
	})
	b.Run("incremental", func(b *testing.B) {
		run(b, serving.BuildOptions{PlanCacheEpochs: 1}, incremental)
	})
}

// BenchmarkServing_MonolithPredict measures the model-wise baseline's
// end-to-end predict path for comparison with the sharded path above.
func BenchmarkServing_MonolithPredict(b *testing.B) {
	cfg := model.RM1().WithRows(50_000).WithName("rm1-mono-bench")
	cfg.NumTables = 4
	m, err := model.New(cfg, 9)
	if err != nil {
		b.Fatal(err)
	}
	mono := serving.NewMonolith(m)
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewQueryGenerator(s, nil, cfg.BatchSize, cfg.Pooling, 4)
	if err != nil {
		b.Fatal(err)
	}
	req := &serving.PredictRequest{
		BatchSize: cfg.BatchSize,
		DenseDim:  cfg.DenseInputDim,
		Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
	}
	for t := 0; t < cfg.NumTables; t++ {
		batch := gen.Next()
		req.Tables = append(req.Tables, serving.TableBatch{Indices: batch.Indices, Offsets: batch.Offsets})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reply serving.PredictReply
		if err := mono.Predict(context.Background(), req, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServing_QueueDepthScaling is the autoscale-hotshard closed loop
// in benchmark form: every gather against a single-replica pull pool
// stalls (fault injection), concurrent bursts pile depth into the bounded
// queue, and the queue-depth policy is evaluated between bursts. The
// replicas-added/op metric reports how much capacity the policy granted
// per burst; it saturates at MaxReplicas, so compare runs at the same
// fixed -benchtime. Replicas are pre-built so the measured allocations
// are the steady-state enqueue/dispatch path, not shard construction.
func BenchmarkServing_QueueDepthScaling(b *testing.B) {
	const rows = 4_000
	tab, err := embedding.NewRandomTable("qds", rows, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	shard, err := serving.NewEmbeddingShard(0, 0, tab, 0, rows)
	if err != nil {
		b.Fatal(err)
	}
	pool := serving.NewReplicaPool(shard)
	defer pool.Close()
	pool.InjectDelay(200 * time.Microsecond)
	const maxReplicas = 4
	spares := make([]serving.GatherClient, 0, maxReplicas-1)
	for i := 1; i < maxReplicas; i++ {
		s, err := serving.NewEmbeddingShard(0, i, tab, 0, rows)
		if err != nil {
			b.Fatal(err)
		}
		spares = append(spares, s)
	}
	var added atomic.Int64
	scaler := &serving.LiveAutoscaler{OnScale: func(_ *serving.AutoscaledShard, from, to int) {
		if to > from {
			added.Add(1)
		}
	}}
	hot := &serving.AutoscaledShard{
		Name:        "qds-t0-s0",
		Pool:        pool,
		Queue:       &serving.QueuePolicy{HighDepth: 2, LowDepth: 0},
		MaxReplicas: maxReplicas,
		Spawn: func() (serving.GatherClient, error) {
			if len(spares) == 0 {
				return nil, context.Canceled // never reached: MaxReplicas caps first
			}
			s := spares[0]
			spares = spares[1:]
			return s, nil
		},
	}
	req := &serving.GatherRequest{Indices: []int64{1, 2, 3}, Offsets: []int32{0}}
	const burst = 8
	replies := make([]serving.GatherReply, burst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < burst; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				replies[c] = serving.GatherReply{}
				if err := pool.Gather(context.Background(), req, &replies[c]); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		scaler.Evaluate(hot)
	}
	b.StopTimer()
	b.ReportMetric(float64(added.Load())/float64(b.N), "replicas-added/op")
}

// BenchmarkServing_StressTestShard runs the Sec. IV-D QPSmax stress test
// against a live embedding shard.
func BenchmarkServing_StressTestShard(b *testing.B) {
	tab, err := embedding.NewRandomTable("stress", 100_000, 32, 5)
	if err != nil {
		b.Fatal(err)
	}
	shard, err := serving.NewEmbeddingShard(0, 0, tab, 0, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	var n atomic.Int64 // newReq is called from concurrent ramp workers
	newReq := func() *serving.GatherRequest {
		v := n.Add(1)
		return &serving.GatherRequest{
			Indices: []int64{v % 100_000, (v * 31) % 100_000, (v * 77) % 100_000},
			Offsets: []int32{0},
		}
	}
	var qpsMax float64
	for i := 0; i < b.N; i++ {
		res, err := serving.StressTest(context.Background(), shard, newReq, serving.StressOptions{
			MaxConcurrency:   8,
			RequestsPerLevel: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		qpsMax = res.QPSMax
	}
	b.ReportMetric(qpsMax, "shard-qpsmax")
}
